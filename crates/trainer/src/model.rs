//! The iNGP model (hash grid + two small MLPs) and the trainable-field trait.

use crate::train::TrainConfig;
use inerf_encoding::{HashFunction, HashGrid, HashGridConfig, LookupCache, TraceSink};
use inerf_geom::Vec3;
use inerf_mlp::{
    Activation, AdamState, Mlp, MlpActivations, MlpBatchActivations, MlpGradients, MlpScratch,
    Precision, FWD_BLOCK,
};
use rayon::ThreadPool;
use serde::{Deserialize, Serialize};

/// A radiance-field model that can be trained by [`crate::train::Trainer`].
///
/// The trainer drives it per batch, either point by point (`begin_batch` →
/// `query` for every sample point, in streaming order → `backward` for every
/// point, same indices → `apply_gradients`) or through the batched
/// structure-of-arrays entry points (`begin_batch` → `query_batch` →
/// `backward_batch` → `apply_gradients`). Implementations cache whatever
/// the backward pass needs during the forward queries.
///
/// The `*_batch` methods have scalar-loop default implementations, so
/// per-point models (the Tab. IV baselines) keep working unchanged under the
/// batched trainer engine; [`IngpModel`] overrides them with a chunked,
/// thread-pool-parallel implementation.
pub trait TrainableField {
    /// Clears per-batch caches and accumulated gradients.
    fn begin_batch(&mut self);

    /// Queries density and color at point `p` (normalized `[0,1]^3`) viewed
    /// along `d`; returns `(sigma, rgb)` and caches intermediates under the
    /// returned index.
    fn query(&mut self, p: Vec3, d: Vec3) -> (f32, Vec3);

    /// Back-propagates the loss gradient of cached point `idx`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `idx` is out of range for the current
    /// batch.
    fn backward(&mut self, idx: usize, d_sigma: f32, d_color: Vec3);

    /// Applies one optimizer step using the accumulated gradients.
    fn apply_gradients(&mut self);

    /// Brings every stored parameter up to date before an out-of-band read
    /// (rendering, evaluation, occupancy refresh, parameter export).
    /// Models with a lazily-replayed sparse optimizer flush their deferred
    /// updates here; for everything else (and after training-loop reads
    /// that stay inside the touched set) it is a no-op, the default.
    fn sync_parameters(&mut self) {}

    /// Queries without caching (for evaluation/rendering).
    fn query_eval(&self, p: Vec3, d: Vec3) -> (f32, Vec3);

    /// Total trainable parameter count.
    fn parameter_count(&self) -> usize;

    /// The parameter-storage precision of this model. Defaults to f32
    /// (the only backend the baseline models have); [`IngpModel`] reports
    /// its [`ParamStore`](inerf_mlp::ParamStore) backend. The trainer
    /// debug-asserts this against `TrainConfig::precision` so a
    /// config/model mismatch cannot silently skew precision-keyed
    /// hardware models.
    fn precision(&self) -> inerf_mlp::Precision {
        inerf_mlp::Precision::F32
    }

    /// Batched [`TrainableField::query`]: fills `sigmas[i]`/`rgbs[i]` for
    /// `points[i]` viewed along `dirs[i]`, caching intermediates under index
    /// `i` for [`TrainableField::backward_batch`].
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree.
    fn query_batch(
        &mut self,
        points: &[Vec3],
        dirs: &[Vec3],
        sigmas: &mut [f32],
        rgbs: &mut [Vec3],
        _pool: &ThreadPool,
    ) {
        assert_eq!(points.len(), dirs.len(), "points/dirs length mismatch");
        assert_eq!(points.len(), sigmas.len(), "sigma buffer mismatch");
        assert_eq!(points.len(), rgbs.len(), "rgb buffer mismatch");
        for (i, (&p, &d)) in points.iter().zip(dirs).enumerate() {
            let (sigma, rgb) = self.query(p, d);
            sigmas[i] = sigma;
            rgbs[i] = rgb;
        }
    }

    /// Batched [`TrainableField::backward`]: back-propagates the loss
    /// gradient of every point cached by the preceding
    /// [`TrainableField::query_batch`], index-aligned with it.
    ///
    /// # Panics
    ///
    /// Panics if the lengths disagree with the cached batch.
    fn backward_batch(&mut self, d_sigmas: &[f32], d_colors: &[Vec3], _pool: &ThreadPool) {
        assert_eq!(
            d_sigmas.len(),
            d_colors.len(),
            "gradient slice length mismatch"
        );
        for (i, (&ds, &dc)) in d_sigmas.iter().zip(d_colors).enumerate() {
            self.backward(i, ds, dc);
        }
    }

    /// Batched [`TrainableField::query_eval`] (no caching).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree.
    fn query_eval_batch(
        &self,
        points: &[Vec3],
        dirs: &[Vec3],
        sigmas: &mut [f32],
        rgbs: &mut [Vec3],
        _pool: &ThreadPool,
    ) {
        assert_eq!(points.len(), dirs.len(), "points/dirs length mismatch");
        assert_eq!(points.len(), sigmas.len(), "sigma buffer mismatch");
        assert_eq!(points.len(), rgbs.len(), "rgb buffer mismatch");
        for (i, (&p, &d)) in points.iter().zip(dirs).enumerate() {
            let (sigma, rgb) = self.query_eval(p, d);
            sigmas[i] = sigma;
            rgbs[i] = rgb;
        }
    }

    /// Density phase of the occupancy-driven *compacted* query. When a
    /// model supports phased evaluation it fills `sigmas` (caching what
    /// the color phase needs) and returns `true`; the engine then scans
    /// ray transmittance to find dead samples and calls
    /// [`TrainableField::query_batch_color_compacted`] /
    /// [`TrainableField::backward_batch_compacted`]. The default returns
    /// `false` — per-point models (the Tab. IV baselines) keep using the
    /// plain [`TrainableField::query_batch`] path unchanged.
    fn query_batch_density(
        &mut self,
        _points: &[Vec3],
        _sigmas: &mut [f32],
        _pool: &ThreadPool,
    ) -> bool {
        false
    }

    /// Color phase of the compacted query: computes `rgbs[i]` for the
    /// samples listed (ascending, global indices) in `live`, and
    /// `Vec3::ZERO` for the rest. Only called after
    /// [`TrainableField::query_batch_density`] returned `true`.
    fn query_batch_color_compacted(
        &mut self,
        _dirs: &[Vec3],
        _live: &[u32],
        _rgbs: &mut [Vec3],
        _pool: &ThreadPool,
    ) {
        unimplemented!(
            "query_batch_density returned false; the compacted color phase is unsupported"
        );
    }

    /// Backward pass matching a compacted query (density phase + compacted
    /// color phase). Only called after
    /// [`TrainableField::query_batch_density`] returned `true`.
    fn backward_batch_compacted(
        &mut self,
        _d_sigmas: &[f32],
        _d_colors: &[Vec3],
        _pool: &ThreadPool,
    ) {
        unimplemented!("query_batch_density returned false; the compacted backward is unsupported");
    }

    /// Density phase of the phased *evaluation* query — the render
    /// engine's no-gradient analogue of
    /// [`TrainableField::query_batch_density`]. When a model supports
    /// phased evaluation it fills `sigmas`, keeps whatever the color phase
    /// needs in the caller-owned `scratch`, and returns `true`; the render
    /// engine then scans ray transmittance and pays the color MLP only for
    /// samples that still matter. The default returns `false`, keeping
    /// per-point models (the Tab. IV baselines) on the dense
    /// [`TrainableField::query_eval_batch`] path.
    fn query_eval_batch_density(
        &self,
        _points: &[Vec3],
        _sigmas: &mut [f32],
        _scratch: &mut EvalScratch,
        _pool: &ThreadPool,
    ) -> bool {
        false
    }

    /// Color phase of the phased evaluation query: computes `rgbs[i]` for
    /// the samples listed (ascending, global indices) in `live` and
    /// `Vec3::ZERO` for the rest. Only called after
    /// [`TrainableField::query_eval_batch_density`] returned `true` with
    /// the same `scratch`.
    fn query_eval_batch_color_compacted(
        &self,
        _dirs: &[Vec3],
        _live: &[u32],
        _rgbs: &mut [Vec3],
        _scratch: &mut EvalScratch,
        _pool: &ThreadPool,
    ) {
        unimplemented!(
            "query_eval_batch_density returned false; the phased evaluation query is unsupported"
        );
    }

    /// Streams the memory-access events this model would generate for a
    /// batch of sample points into the trace bus — the algorithm→hardware
    /// boundary the co-simulation path hooks into. One `push_cube` per
    /// hash-table level per point (in point order) plus one `end_point`
    /// per point; the caller owns `end_batch`.
    ///
    /// The default is a no-op: models without a hash-table access stream
    /// (the Tab. IV baselines) generate no trace events.
    fn stream_lookups(&self, _points: &[Vec3], _sink: &mut dyn TraceSink) {}
}

/// Execution path of the hash-grid optimizer.
///
/// Both paths produce bitwise-identical training trajectories (losses,
/// parameters, DRAM/cosim statistics) — `Sparse` is the default and
/// `Dense` is the pinned O(table) reference it is tested against. See
/// DESIGN.md, "Sparse optimizer & lazy Adam".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptPath {
    /// Full-table sweep every iteration: dense Adam step, full fp16
    /// re-quantize, full gradient memset.
    Dense,
    /// O(touched entries) per iteration: touched-set collection during the
    /// forward prepass, lazy-replay Adam, sparse fp16 commit.
    Sparse,
}

impl OptPath {
    /// Parses an `INERF_OPT` value. Unknown strings are a hard error
    /// naming the value — a typo must not silently select the default
    /// path under a benchmark that claims to measure the other one.
    pub fn parse(raw: &str) -> Result<Self, String> {
        let v = raw.trim();
        if v.eq_ignore_ascii_case("dense") {
            Ok(OptPath::Dense)
        } else if v.is_empty() || v.eq_ignore_ascii_case("sparse") {
            Ok(OptPath::Sparse)
        } else {
            Err(format!(
                "INERF_OPT={v:?} is not a recognized optimizer path; \
                 expected one of: sparse, dense"
            ))
        }
    }

    /// Reads the `INERF_OPT` environment knob: `dense` selects the
    /// reference path, `sparse` (or unset) the default.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized or non-Unicode value (see
    /// [`OptPath::parse`]) — configuration typos fail loudly.
    pub fn from_env() -> Self {
        match std::env::var("INERF_OPT") {
            Ok(v) => match Self::parse(&v) {
                Ok(opt) => opt,
                Err(msg) => panic!("{msg}"),
            },
            Err(std::env::VarError::NotPresent) => OptPath::Sparse,
            Err(std::env::VarError::NotUnicode(v)) => {
                panic!("INERF_OPT={v:?} is not valid Unicode")
            }
        }
    }

    /// Lower-case label for reports and JSON dumps.
    pub const fn label(self) -> &'static str {
        match self {
            OptPath::Dense => "dense",
            OptPath::Sparse => "sparse",
        }
    }
}

/// Architecture hyper-parameters of [`IngpModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Hash-grid configuration.
    pub grid: HashGridConfig,
    /// Hidden width of the density MLP.
    pub density_hidden: usize,
    /// Output width of the density MLP (1 density + geometry features).
    pub density_out: usize,
    /// Hidden width of the color MLP (two hidden layers).
    pub color_hidden: usize,
}

impl ModelConfig {
    /// The paper's configuration: `L=16, T=2^19, F=2` grid, width-64 MLPs,
    /// 16 density outputs (iNGP defaults).
    pub fn paper(hash: HashFunction) -> Self {
        ModelConfig {
            grid: HashGridConfig::paper(hash),
            density_hidden: 64,
            density_out: 16,
            color_hidden: 64,
        }
    }

    /// A small configuration for tests and examples (seconds to train).
    pub fn tiny() -> Self {
        ModelConfig {
            grid: HashGridConfig::tiny(HashFunction::Morton),
            density_hidden: 16,
            density_out: 8,
            color_hidden: 16,
        }
    }

    /// A mid-sized configuration that reaches good PSNR on the procedural
    /// scenes in a few hundred iterations (used by the PSNR experiments).
    pub fn small(hash: HashFunction) -> Self {
        ModelConfig {
            grid: HashGridConfig {
                levels: 8,
                table_size_log2: 14,
                features: 2,
                n_min: 4,
                n_max: 96,
                hash,
            },
            density_hidden: 32,
            density_out: 8,
            color_hidden: 32,
        }
    }
}

/// Spherical-harmonics-style direction encoding (degree 2, 9 coefficients),
/// the view-direction featurization iNGP feeds its color MLP.
pub fn direction_encoding(d: Vec3) -> [f32; 9] {
    let (x, y, z) = (d.x, d.y, d.z);
    [
        1.0,
        x,
        y,
        z,
        x * y,
        x * z,
        y * z,
        x * x - y * y,
        3.0 * z * z - 1.0,
    ]
}

/// Cached activations of one queried point (needed for backprop).
#[derive(Debug, Clone)]
struct PointCache {
    p: Vec3,
    density_acts: MlpActivations,
    color_acts: MlpActivations,
    sigma: f32,
}

/// Points per chunk of the batched engine. Fixed (not derived from the
/// worker count) so chunk boundaries — and therefore every gradient
/// accumulation order — are identical at any thread count.
const POINT_CHUNK: usize = 256;

/// Per-chunk scratch of the batched engine: forward activations (kept for
/// the backward pass) and chunk-local parameter gradients. Buffers are
/// reused across batches — each thread works on its own chunk, so nothing
/// here is shared.
#[derive(Debug, Clone, Default)]
struct ChunkScratch {
    /// `n × L*F` hash-grid features (density-MLP input).
    feats: Vec<f32>,
    /// Corner entries/weights cached by the encode, reused by the scatter.
    lookups: LookupCache,
    density: MlpBatchActivations,
    /// Color-MLP input rows: `n × (geo + 9)` dense, or `m × (geo + 9)`
    /// over the live rows only when `compact` is set.
    color_in: Vec<f32>,
    color: MlpBatchActivations,
    /// Post-softplus densities (needed for the softplus gradient chain).
    sigmas: Vec<f32>,
    /// `n × L*F` feature gradients for the hash-grid scatter.
    d_feats: Vec<f32>,
    d_color_in: Vec<f32>,
    d_raw: Vec<f32>,
    d_rgb: Vec<f32>,
    density_grads: MlpGradients,
    color_grads: MlpGradients,
    /// Pooled GEMM-transpose / gradient ping-pong buffers per MLP.
    density_scratch: MlpScratch,
    color_scratch: MlpScratch,
    /// Chunk-local indices of live samples (compacted color stage).
    live: Vec<u32>,
    /// Whether the color buffers hold compacted (live-row-only) data.
    compact: bool,
}

/// Resizes a scratch buffer without zeroing the retained prefix. Every
/// caller fully overwrites the buffer before reading it (encode fills all
/// feature slots, the MLP kernels write every row, the gradient assembly
/// loops cover every element), so a clear would be a redundant memset.
fn reset_buf(buf: &mut Vec<f32>, len: usize) {
    buf.resize(len, 0.0);
}

impl ChunkScratch {
    /// Density phase of this chunk's forward pass: fused encode → density
    /// MLP. Each block-transposed feature tile streams straight from the
    /// hash-grid encode into the first GEMM while cache-hot (the row-major
    /// copy in `feats` is still kept — the backward pass needs it for the
    /// layer-0 weight gradients and the grid scatter). Per point the
    /// arithmetic matches the scalar [`IngpModel::query`] path bitwise.
    fn forward_density(
        &mut self,
        grid: &HashGrid,
        density_mlp: &Mlp,
        points: &[Vec3],
        sigmas_out: &mut [f32],
        prefilled: bool,
    ) {
        let n = points.len();
        let fdim = grid.config().feature_dim();
        let dout = density_mlp.out_dim();
        reset_buf(&mut self.feats, n * fdim);
        if !prefilled {
            grid.prepare_cache(&mut self.lookups, n);
        }
        let ChunkScratch {
            feats,
            lookups,
            density,
            density_scratch,
            ..
        } = self;
        density_mlp.forward_batch_fused(
            n,
            |base, bn, tile| {
                if prefilled {
                    // Sparse-path prepass already derived every corner
                    // entry and weight; gather-only encode.
                    grid.encode_tile_bt_from_cache(base, bn, FWD_BLOCK, feats, tile, lookups)
                } else {
                    grid.encode_tile_bt_cached(points, base, bn, FWD_BLOCK, feats, tile, lookups)
                }
            },
            density,
            density_scratch,
        );
        reset_buf(&mut self.sigmas, n);
        let raw = self.density.output();
        for i in 0..n {
            let sigma = Activation::Softplus.apply(raw[i * dout]);
            self.sigmas[i] = sigma;
            sigmas_out[i] = sigma;
        }
    }

    /// Dense color phase: assembles every row's color-MLP input (geometry
    /// features + direction encoding) and runs the color MLP over the full
    /// chunk.
    fn forward_color(
        &mut self,
        color_mlp: &Mlp,
        dout: usize,
        dirs: &[Vec3],
        rgbs_out: &mut [Vec3],
    ) {
        let n = dirs.len();
        let geo = dout - 1;
        let cin = geo + 9;
        self.compact = false;
        reset_buf(&mut self.color_in, n * cin);
        let raw = self.density.output();
        for i in 0..n {
            let slot = &mut self.color_in[i * cin..(i + 1) * cin];
            slot[..geo].copy_from_slice(&raw[i * dout + 1..(i + 1) * dout]);
            slot[geo..].copy_from_slice(&direction_encoding(dirs[i]));
        }
        color_mlp.forward_batch_scratch(&self.color_in, &mut self.color, &mut self.color_scratch);
        let out = self.color.output();
        for (i, rgb) in rgbs_out.iter_mut().enumerate() {
            *rgb = Vec3::new(out[3 * i], out[3 * i + 1], out[3 * i + 2]);
        }
    }

    /// Compacted color phase: only the rows in `self.live` (chunk-local,
    /// ascending) go through the color MLP; dead rows get `Vec3::ZERO`.
    /// Dead samples sit strictly after their ray's transmittance reached
    /// exactly `0.0`, so the composite multiplies their color by `+0.0` —
    /// substituting zero is bitwise-identical (see
    /// [`crate::engine::scan_live_samples`]). Falls back to the dense path
    /// when every row is live.
    fn forward_color_compacted(
        &mut self,
        color_mlp: &Mlp,
        dout: usize,
        dirs: &[Vec3],
        rgbs_out: &mut [Vec3],
    ) {
        let n = dirs.len();
        if self.live.len() == n {
            return self.forward_color(color_mlp, dout, dirs, rgbs_out);
        }
        self.compact = true;
        let m = self.live.len();
        let geo = dout - 1;
        let cin = geo + 9;
        reset_buf(&mut self.color_in, m * cin);
        let raw = self.density.output();
        for (k, &li) in self.live.iter().enumerate() {
            let i = li as usize;
            let slot = &mut self.color_in[k * cin..(k + 1) * cin];
            slot[..geo].copy_from_slice(&raw[i * dout + 1..(i + 1) * dout]);
            slot[geo..].copy_from_slice(&direction_encoding(dirs[i]));
        }
        color_mlp.forward_batch_scratch(&self.color_in, &mut self.color, &mut self.color_scratch);
        let out = self.color.output();
        rgbs_out.fill(Vec3::ZERO);
        for (k, &li) in self.live.iter().enumerate() {
            rgbs_out[li as usize] = Vec3::new(out[3 * k], out[3 * k + 1], out[3 * k + 2]);
        }
    }

    /// Full forward pass (density + dense color) — the uncompacted batched
    /// path and the evaluation path.
    #[allow(clippy::too_many_arguments)]
    fn forward(
        &mut self,
        grid: &HashGrid,
        density_mlp: &Mlp,
        color_mlp: &Mlp,
        points: &[Vec3],
        dirs: &[Vec3],
        sigmas_out: &mut [f32],
        rgbs_out: &mut [Vec3],
        prefilled: bool,
    ) {
        self.forward_density(grid, density_mlp, points, sigmas_out, prefilled);
        self.forward_color(color_mlp, density_mlp.out_dim(), dirs, rgbs_out);
    }

    /// Backward pass over this chunk: color MLP → softplus chain → density
    /// MLP, accumulating parameter gradients chunk-locally and leaving the
    /// feature gradients in `d_feats` for the (sequential, deterministic)
    /// hash-grid scatter. Honors the forward pass's layout: when the color
    /// stage ran compacted, only live rows flow back through the color MLP
    /// (dead rows carry `±0.0` gradients, which the dense path would drop
    /// via its zero-gradient early-outs anyway), and the density backward
    /// runs dense — its per-row early-out makes dead rows `O(out_dim)`.
    fn backward(
        &mut self,
        density_mlp: &Mlp,
        color_mlp: &Mlp,
        d_sigmas: &[f32],
        d_colors: &[Vec3],
    ) {
        let n = d_sigmas.len();
        let fdim = density_mlp.in_dim();
        let dout = density_mlp.out_dim();
        let geo = dout - 1;
        let cin = geo + 9;
        self.color_grads.reset(color_mlp);
        self.density_grads.reset(density_mlp);
        reset_buf(&mut self.d_raw, n * dout);
        if self.compact {
            let m = self.live.len();
            reset_buf(&mut self.d_rgb, m * 3);
            for (k, &li) in self.live.iter().enumerate() {
                let d = d_colors[li as usize];
                self.d_rgb[3 * k] = d.x;
                self.d_rgb[3 * k + 1] = d.y;
                self.d_rgb[3 * k + 2] = d.z;
            }
            reset_buf(&mut self.d_color_in, m * cin);
            color_mlp.backward_batch_scratch(
                &self.color_in,
                &self.color,
                &self.d_rgb,
                &mut self.d_color_in,
                &mut self.color_grads,
                &mut self.color_scratch,
            );
            // Dead rows: d_raw stays zero (their gradients are ±0.0, which
            // the density backward's early-out drops identically).
            self.d_raw.fill(0.0);
            for (k, &li) in self.live.iter().enumerate() {
                let i = li as usize;
                // d softplus(x)/dx = sigmoid(x) = 1 - e^{-softplus(x)}.
                self.d_raw[i * dout] = d_sigmas[i] * (1.0 - (-self.sigmas[i]).exp());
                self.d_raw[i * dout + 1..(i + 1) * dout]
                    .copy_from_slice(&self.d_color_in[k * cin..k * cin + geo]);
            }
        } else {
            reset_buf(&mut self.d_rgb, n * 3);
            for (i, d) in d_colors.iter().enumerate() {
                self.d_rgb[3 * i] = d.x;
                self.d_rgb[3 * i + 1] = d.y;
                self.d_rgb[3 * i + 2] = d.z;
            }
            reset_buf(&mut self.d_color_in, n * cin);
            color_mlp.backward_batch_scratch(
                &self.color_in,
                &self.color,
                &self.d_rgb,
                &mut self.d_color_in,
                &mut self.color_grads,
                &mut self.color_scratch,
            );
            for (i, &d_sigma) in d_sigmas.iter().enumerate() {
                // d softplus(x)/dx = sigmoid(x) = 1 - e^{-softplus(x)}.
                self.d_raw[i * dout] = d_sigma * (1.0 - (-self.sigmas[i]).exp());
                self.d_raw[i * dout + 1..(i + 1) * dout]
                    .copy_from_slice(&self.d_color_in[i * cin..i * cin + geo]);
            }
        }
        reset_buf(&mut self.d_feats, n * fdim);
        density_mlp.backward_batch_scratch(
            &self.feats,
            &self.density,
            &self.d_raw,
            &mut self.d_feats,
            &mut self.density_grads,
            &mut self.density_scratch,
        );
    }
}

/// Batch-wide cache of the batched engine: the batch size plus per-chunk
/// scratch (the hash-grid backward scatter replays each chunk's cached
/// corner lookups, so the points themselves need not be retained).
#[derive(Debug, Clone, Default)]
struct BatchCache {
    len: usize,
    chunks: Vec<ChunkScratch>,
}

/// Caller-owned scratch for the phased *evaluation* query
/// ([`TrainableField::query_eval_batch_density`] /
/// [`TrainableField::query_eval_batch_color_compacted`]). Opaque outside
/// this module: the render engine holds one per engine and hands it back on
/// every call, so steady-state rendering reuses the per-chunk buffers
/// instead of allocating fresh scratch per block (which is what the plain
/// `&self` [`TrainableField::query_eval_batch`] has to do).
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    /// Sample count of the density phase, rechecked by the color phase.
    len: usize,
    chunks: Vec<ChunkScratch>,
}

impl EvalScratch {
    /// Sum of the directly-owned buffer capacities, for the render arena's
    /// growth-event accounting. Nested kernel scratch (MLP activations,
    /// lookup caches, GEMM ping-pong buffers) is excluded — those types do
    /// not expose capacities — but all of it is `resize`-managed and never
    /// shrunk, so this sum still only stays flat when the scratch as a
    /// whole reached steady state.
    pub(crate) fn capacity_sum(&self) -> usize {
        self.chunks.capacity()
            + self
                .chunks
                .iter()
                .map(|c| {
                    c.feats.capacity()
                        + c.color_in.capacity()
                        + c.sigmas.capacity()
                        + c.live.capacity()
                })
                .sum::<usize>()
    }
}

/// The iNGP / Instant-NeRF model: multi-resolution hash grid → density MLP →
/// color MLP.
///
/// The density MLP maps the `L*F` encoding to `density_out` values; element 0
/// passes through `exp` to give `σ`, the rest are geometry features. The
/// color MLP consumes the geometry features plus the 9-dim direction
/// encoding and outputs sigmoid RGB.
#[derive(Debug, Clone)]
pub struct IngpModel {
    config: ModelConfig,
    grid: HashGrid,
    density_mlp: Mlp,
    color_mlp: Mlp,
    grid_adam: AdamState,
    density_adam: AdamState,
    color_adam: AdamState,
    opt: OptPath,
    cache: Vec<PointCache>,
    batch: BatchCache,
    /// Scratch: this iteration's touched gradients, gathered compactly by
    /// the sparse clip-norm pass so the Adam step streams them instead of
    /// re-gathering from the dense table.
    touched_grads: Vec<f32>,
}

impl IngpModel {
    /// Learning rate used for all parameter groups (iNGP uses 1e-2 with
    /// per-group scaling; one shared rate suffices at our scale).
    pub const LEARNING_RATE: f32 = 1e-2;

    /// Global-norm gradient clip applied per parameter group each step.
    /// The exp density activation can otherwise blow a batch's gradients
    /// up and collapse training (a known iNGP instability).
    pub const GRAD_CLIP_NORM: f32 = 32.0;

    /// Creates a model with freshly initialized f32-stored parameters
    /// (the pre-mixed-precision behavior, bit-identical).
    pub fn new(config: ModelConfig, seed: u64) -> Self {
        Self::with_precision(config, seed, Precision::F32)
    }

    /// [`IngpModel::new`] with the hash table and both MLPs stored at
    /// `precision` (fp16 keeps f32 master weights for Adam and commits
    /// RNE-rounded working copies after every optimizer step). The
    /// initialization draws are identical to the f32 model. The grid
    /// optimizer path comes from [`OptPath::from_env`].
    pub fn with_precision(config: ModelConfig, seed: u64, precision: Precision) -> Self {
        Self::with_options(config, seed, precision, OptPath::from_env())
    }

    /// Fully explicit constructor: precision *and* grid-optimizer path.
    pub fn with_options(
        config: ModelConfig,
        seed: u64,
        precision: Precision,
        opt: OptPath,
    ) -> Self {
        let mut grid = HashGrid::with_precision(config.grid, seed, precision);
        let feat = config.grid.feature_dim();
        let density_mlp = Mlp::with_precision(
            &[feat, config.density_hidden, config.density_out],
            Activation::Relu,
            Activation::Identity,
            seed ^ 0xD5,
            precision,
        );
        let color_in = (config.density_out - 1) + 9;
        let color_mlp = Mlp::with_precision(
            &[color_in, config.color_hidden, config.color_hidden, 3],
            Activation::Relu,
            Activation::Sigmoid,
            seed ^ 0xC0,
            precision,
        );
        let mut grid_adam = AdamState::new(grid.parameters().len(), Self::LEARNING_RATE);
        if opt == OptPath::Sparse {
            grid.enable_touch_tracking();
            grid_adam.enable_lazy();
        }
        let density_adam = AdamState::new(density_mlp.parameter_count(), Self::LEARNING_RATE);
        let color_adam = AdamState::new(color_mlp.parameter_count(), Self::LEARNING_RATE);
        IngpModel {
            config,
            grid,
            density_mlp,
            color_mlp,
            grid_adam,
            density_adam,
            color_adam,
            opt,
            cache: Vec::new(),
            batch: BatchCache::default(),
            touched_grads: Vec::new(),
        }
    }

    /// [`IngpModel::with_options`] driven by a [`TrainConfig`]'s
    /// `precision` and `opt` fields — the one-stop constructor for
    /// precision- and optimizer-swept experiments.
    pub fn for_config(config: ModelConfig, train: &TrainConfig, seed: u64) -> Self {
        Self::with_options(config, seed, train.precision, train.opt)
    }

    /// The grid-optimizer execution path this model runs.
    pub fn opt_path(&self) -> OptPath {
        self.opt
    }

    /// The architecture configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The parameter-storage precision of every parameter group.
    pub fn precision(&self) -> Precision {
        self.grid.precision()
    }

    /// Modeled bytes of all stored parameters (hash table + both MLPs) at
    /// this model's precision — half the f32 footprint for fp16 models.
    pub fn parameter_storage_bytes(&self) -> usize {
        self.grid.storage_bytes()
            + self.density_mlp.parameter_bytes()
            + self.color_mlp.parameter_bytes()
    }

    /// The underlying hash grid (e.g. for trace generation).
    pub fn grid(&self) -> &HashGrid {
        &self.grid
    }

    /// The density MLP (read-only; used by equivalence tests).
    pub fn density_mlp(&self) -> &Mlp {
        &self.density_mlp
    }

    /// The color MLP (read-only; used by equivalence tests).
    pub fn color_mlp(&self) -> &Mlp {
        &self.color_mlp
    }

    /// Checkpoint hooks: the three optimizer states in a fixed order
    /// (grid, density MLP, color MLP).
    pub(crate) fn adam_states(&self) -> [&AdamState; 3] {
        [&self.grid_adam, &self.density_adam, &self.color_adam]
    }

    /// Checkpoint-restore hooks, same order as
    /// [`IngpModel::adam_states`].
    pub(crate) fn adam_states_mut(&mut self) -> [&mut AdamState; 3] {
        [
            &mut self.grid_adam,
            &mut self.density_adam,
            &mut self.color_adam,
        ]
    }

    /// Mutable grid access for checkpoint restore.
    pub(crate) fn grid_mut(&mut self) -> &mut HashGrid {
        &mut self.grid
    }

    /// Mutable MLP access for checkpoint restore (density, color).
    pub(crate) fn mlps_mut(&mut self) -> (&mut Mlp, &mut Mlp) {
        (&mut self.density_mlp, &mut self.color_mlp)
    }

    fn forward_parts(&self, p: Vec3, d: Vec3) -> (MlpActivations, MlpActivations, f32, Vec3) {
        let feats = self.grid.encode(p);
        let density_acts = self.density_mlp.forward(&feats);
        let raw = density_acts.output();
        // Softplus density: like iNGP's exp it is positive and unbounded,
        // but its gradient never vanishes at small raw values — the exp
        // head can collapse to zero density on thin-structure scenes and
        // never recover (dead-gradient local optimum).
        let sigma = Activation::Softplus.apply(raw[0]);
        let dir = direction_encoding(d);
        let mut color_in = Vec::with_capacity(raw.len() - 1 + 9);
        color_in.extend_from_slice(&raw[1..]);
        color_in.extend_from_slice(&dir);
        let color_acts = self.color_mlp.forward(&color_in);
        let o = color_acts.output();
        let rgb = Vec3::new(o[0], o[1], o[2]);
        (density_acts, color_acts, sigma, rgb)
    }

    /// Sparse-path forward prepass, part 2: replays the lazy Adam chains of
    /// every entry collected since the last sync, so the encode about to
    /// run reads exactly the parameter values the dense path would hold.
    /// No-op in dense mode and when nothing new was collected.
    fn sync_touched(&mut self) {
        let f = self.config.grid.features as usize;
        let (new_entries, master) = self.grid.unsynced_touched_and_master();
        if new_entries.is_empty() {
            return;
        }
        self.grid_adam.sync_entries(master, new_entries, f);
        self.grid.mark_touched_synced();
    }

    /// Batched-engine prepass. Sizes the chunk list, and on the sparse
    /// path additionally fills every chunk's corner-lookup cache in
    /// parallel (the exact index math the fused encode would otherwise
    /// do), collects the batch's read set from the cached indices, and
    /// replays those entries' lazy Adam chains — so the gather-only
    /// encode that follows reads exactly the parameter values the dense
    /// path would hold. Returns whether the caches are pre-filled.
    fn prepass_batch(&mut self, points: &[Vec3], pool: &ThreadPool) -> bool {
        let n = points.len();
        self.batch.len = n;
        let n_chunks = n.div_ceil(POINT_CHUNK);
        self.batch
            .chunks
            .resize_with(n_chunks, ChunkScratch::default);
        if self.opt != OptPath::Sparse {
            return false;
        }
        let IngpModel { grid, batch, .. } = self;
        if pool.current_num_threads() > 1 {
            let grid_ref = &*grid;
            pool.scope(|s| {
                for (ci, chunk) in batch.chunks.iter_mut().enumerate() {
                    let lo = ci * POINT_CHUNK;
                    let hi = (lo + POINT_CHUNK).min(n);
                    let pts = &points[lo..hi];
                    s.spawn(move |_| grid_ref.fill_cache(pts, &mut chunk.lookups));
                }
            });
            // Serial, chunk-ordered collection: the deduplicated entry
            // sequence is identical to a point-ordered walk, so the sync
            // and the later finalize see the same set in the same order
            // at any thread count.
            for chunk in &batch.chunks {
                grid.collect_touched_cache(&chunk.lookups);
            }
        } else {
            // Single worker: interleave collection with each chunk's
            // fill while its cache lines are still hot. The stamp dedup
            // is insertion-order-insensitive within a chunk walk and the
            // chunk order matches the parallel branch, so the collected
            // sequence — and everything downstream — is identical.
            for (ci, chunk) in batch.chunks.iter_mut().enumerate() {
                let lo = ci * POINT_CHUNK;
                let hi = (lo + POINT_CHUNK).min(n);
                grid.fill_cache(&points[lo..hi], &mut chunk.lookups);
                grid.collect_touched_cache(&chunk.lookups);
            }
        }
        self.sync_touched();
        true
    }

    fn step_mlp(mlp: &mut Mlp, adam: &mut AdamState) {
        // Global-norm clip over the MLP's gradients. Read-only over the
        // gradient buffers — for_each_param_mut would needlessly re-commit
        // (re-quantize) every fp16 parameter just to compute the norm.
        let norm_sq: f64 = mlp
            .layers()
            .iter()
            .flat_map(|l| l.gradients())
            .map(|&g| (g as f64) * (g as f64))
            .sum();
        let scale = clip_scale(norm_sq, Self::GRAD_CLIP_NORM);
        adam.begin_step();
        let mut idx = 0usize;
        mlp.for_each_param_mut(|p, g| {
            adam.update_one(idx, p, g * scale);
            idx += 1;
        });
    }
}

/// Scale factor bringing a gradient vector of squared norm `norm_sq` inside
/// the `clip` ball (1.0 when already inside).
fn clip_scale(norm_sq: f64, clip: f32) -> f32 {
    let norm = norm_sq.sqrt() as f32;
    if norm > clip {
        clip / norm
    } else {
        1.0
    }
}

impl TrainableField for IngpModel {
    fn begin_batch(&mut self) {
        self.cache.clear();
        self.batch.len = 0;
        // Sparse path: zero only the previous iteration's touched gradient
        // slots and open a new touch epoch (falls back to the full memset
        // when tracking is disabled — the dense path).
        self.grid.begin_touch_batch();
        self.density_mlp.zero_grad();
        self.color_mlp.zero_grad();
    }

    fn query(&mut self, p: Vec3, d: Vec3) -> (f32, Vec3) {
        // Sparse-path prepass: the read set of this query is exactly the
        // eight corner entries per level — collect them and replay their
        // lazy Adam chains before the encode reads them.
        self.grid.collect_touched_point(p);
        self.sync_touched();
        let (density_acts, color_acts, sigma, rgb) = self.forward_parts(p, d);
        self.cache.push(PointCache {
            p,
            density_acts,
            color_acts,
            sigma,
        });
        (sigma, rgb)
    }

    fn backward(&mut self, idx: usize, d_sigma: f32, d_color: Vec3) {
        let cache = &self.cache[idx];
        let p = cache.p;
        let sigma = cache.sigma;
        // Color MLP backward.
        let d_color_in = self
            .color_mlp
            .backward(&cache.color_acts, &[d_color.x, d_color.y, d_color.z]);
        // Density MLP backward: raw[0] via exp chain, raw[1..] from color MLP
        // input gradient (the direction-encoding part has no parameters).
        let geo = self.config.density_out - 1;
        let mut d_raw = vec![0.0f32; self.config.density_out];
        // d softplus(x)/dx = sigmoid(x) = 1 - e^{-softplus(x)}.
        d_raw[0] = d_sigma * (1.0 - (-sigma).exp());
        d_raw[1..].copy_from_slice(&d_color_in[..geo]);
        let d_feats = self.density_mlp.backward(&cache.density_acts, &d_raw);
        self.grid.backward(p, &d_feats);
    }

    fn apply_gradients(&mut self) {
        match self.opt {
            OptPath::Sparse => {
                // O(touched) step. Ascending scalar order makes the
                // clip-norm accumulate in dense index order — every
                // skipped term is an exact +0.0 contribution to a
                // never-negative f64 accumulator, so the sum is bitwise
                // the dense one. The prepass already replayed the touched
                // entries through the previous step, so `step_sparse`
                // performs exactly the dense update at the new step.
                self.grid.finalize_touched();
                let (scalars, store, grads) = self.grid.touched_scalars_store_grads();
                // The clip-norm pass gathers the touched gradients into a
                // compact scratch as a side product, so the Adam step can
                // stream them instead of re-gathering one cache line per
                // scalar. Same values in the same ascending order: the
                // accumulated norm and the step are bitwise unchanged.
                self.touched_grads.clear();
                self.touched_grads.reserve(scalars.len());
                let mut norm_sq = 0.0f64;
                for &i in scalars {
                    let g = grads[i as usize];
                    self.touched_grads.push(g);
                    norm_sq += (g as f64) * (g as f64);
                }
                let scale = clip_scale(norm_sq, Self::GRAD_CLIP_NORM);
                // Fused step + fp16 re-quantize of only the scalars Adam
                // moved (no-op commit for f32 grids).
                self.grid_adam
                    .step_sparse_gathered(store, &self.touched_grads, scalars, scale);
            }
            OptPath::Dense => {
                let (params, grads) = self.grid.parameters_and_gradients_mut();
                let norm_sq: f64 = grads.iter().map(|&g| (g as f64) * (g as f64)).sum();
                let scale = clip_scale(norm_sq, Self::GRAD_CLIP_NORM);
                // Folding the scale into the gradient read is bitwise-
                // identical to the historical clone-and-rescale (g × 1.0
                // is exact), without the O(table) copy. Adam moves the
                // f32 master weights; the commit re-quantizes the working
                // copy for fp16 grids (no-op for f32).
                self.grid_adam.step_scaled(params, grads, scale);
                self.grid.commit_parameters();
            }
        }
        Self::step_mlp(&mut self.density_mlp, &mut self.density_adam);
        Self::step_mlp(&mut self.color_mlp, &mut self.color_adam);
    }

    fn sync_parameters(&mut self) {
        if self.opt == OptPath::Sparse {
            self.grid_adam
                .sync_all(self.grid.parameter_store_mut().master_mut());
            self.grid.commit_parameters();
        }
    }

    fn query_eval(&self, p: Vec3, d: Vec3) -> (f32, Vec3) {
        let (_, _, sigma, rgb) = self.forward_parts(p, d);
        (sigma, rgb)
    }

    fn parameter_count(&self) -> usize {
        self.grid.parameters().len()
            + self.density_mlp.parameter_count()
            + self.color_mlp.parameter_count()
    }

    fn precision(&self) -> Precision {
        IngpModel::precision(self)
    }

    /// Batched forward: the batch is cut into fixed `POINT_CHUNK`-point
    /// chunks, each encoded and run through both MLPs on a pool worker with
    /// chunk-local reusable scratch. Per point the arithmetic matches the
    /// scalar [`TrainableField::query`] path bitwise.
    fn query_batch(
        &mut self,
        points: &[Vec3],
        dirs: &[Vec3],
        sigmas: &mut [f32],
        rgbs: &mut [Vec3],
        pool: &ThreadPool,
    ) {
        let n = points.len();
        assert_eq!(n, dirs.len(), "points/dirs length mismatch");
        assert_eq!(n, sigmas.len(), "sigma buffer mismatch");
        assert_eq!(n, rgbs.len(), "rgb buffer mismatch");
        // Sparse-path prepass: derive every corner lookup once, collect
        // the batch's read set, and replay those entries' lazy Adam
        // chains before any chunk encodes.
        let prefilled = self.prepass_batch(points, pool);
        let grid = &self.grid;
        let density_mlp = &self.density_mlp;
        let color_mlp = &self.color_mlp;
        let mut sigma_rest: &mut [f32] = sigmas;
        let mut rgb_rest: &mut [Vec3] = rgbs;
        pool.scope(|s| {
            for (ci, chunk) in self.batch.chunks.iter_mut().enumerate() {
                let lo = ci * POINT_CHUNK;
                let hi = (lo + POINT_CHUNK).min(n);
                let (sigma_c, rest) = std::mem::take(&mut sigma_rest).split_at_mut(hi - lo);
                sigma_rest = rest;
                let (rgb_c, rest) = std::mem::take(&mut rgb_rest).split_at_mut(hi - lo);
                rgb_rest = rest;
                let pts = &points[lo..hi];
                let drs = &dirs[lo..hi];
                s.spawn(move |_| {
                    chunk.forward(
                        grid,
                        density_mlp,
                        color_mlp,
                        pts,
                        drs,
                        sigma_c,
                        rgb_c,
                        prefilled,
                    );
                });
            }
        });
    }

    /// Density phase of the phased (compaction-capable) batched query:
    /// fused encode → density MLP per fixed chunk, leaving each chunk's
    /// activations cached for the color phase. Always supported.
    fn query_batch_density(
        &mut self,
        points: &[Vec3],
        sigmas: &mut [f32],
        pool: &ThreadPool,
    ) -> bool {
        let n = points.len();
        assert_eq!(n, sigmas.len(), "sigma buffer mismatch");
        // Sparse-path prepass (see `query_batch`). The compacted color
        // phase reads no grid entries, so the density-phase read set
        // covers the whole phased query.
        let prefilled = self.prepass_batch(points, pool);
        let grid = &self.grid;
        let density_mlp = &self.density_mlp;
        let mut sigma_rest: &mut [f32] = sigmas;
        pool.scope(|s| {
            for (ci, chunk) in self.batch.chunks.iter_mut().enumerate() {
                let lo = ci * POINT_CHUNK;
                let hi = (lo + POINT_CHUNK).min(n);
                let (sigma_c, rest) = std::mem::take(&mut sigma_rest).split_at_mut(hi - lo);
                sigma_rest = rest;
                let pts = &points[lo..hi];
                s.spawn(move |_| chunk.forward_density(grid, density_mlp, pts, sigma_c, prefilled));
            }
        });
        true
    }

    /// Color phase over the live samples only. `live` holds ascending
    /// global sample indices; the model splits it per chunk (fixed
    /// boundaries, so the decomposition — and every result — is
    /// thread-count-independent) and runs each chunk's color MLP over its
    /// live rows, writing `Vec3::ZERO` for dead ones.
    fn query_batch_color_compacted(
        &mut self,
        dirs: &[Vec3],
        live: &[u32],
        rgbs: &mut [Vec3],
        pool: &ThreadPool,
    ) {
        let n = self.batch.len;
        assert_eq!(n, dirs.len(), "dirs length mismatch");
        assert_eq!(n, rgbs.len(), "rgb buffer mismatch");
        // Split the global live list into chunk-local index lists.
        let mut cursor = 0usize;
        for (ci, chunk) in self.batch.chunks.iter_mut().enumerate() {
            let lo = ci * POINT_CHUNK;
            let hi = (lo + POINT_CHUNK).min(n);
            chunk.live.clear();
            while cursor < live.len() && (live[cursor] as usize) < hi {
                chunk.live.push(live[cursor] - lo as u32);
                cursor += 1;
            }
        }
        assert_eq!(cursor, live.len(), "live indices out of range");
        let dout = self.density_mlp.out_dim();
        let color_mlp = &self.color_mlp;
        let mut rgb_rest: &mut [Vec3] = rgbs;
        pool.scope(|s| {
            for (ci, chunk) in self.batch.chunks.iter_mut().enumerate() {
                let lo = ci * POINT_CHUNK;
                let hi = (lo + POINT_CHUNK).min(n);
                let (rgb_c, rest) = std::mem::take(&mut rgb_rest).split_at_mut(hi - lo);
                rgb_rest = rest;
                let drs = &dirs[lo..hi];
                s.spawn(move |_| chunk.forward_color_compacted(color_mlp, dout, drs, rgb_c));
            }
        });
    }

    /// Batched backward. Chunks back-propagate through both MLPs in
    /// parallel (chunk-local gradients); the hash-grid scatter — replaying
    /// each chunk's cached corner lookups instead of re-deriving cube
    /// geometry — and the MLP gradient folds then run sequentially *in
    /// chunk order*, which makes the accumulated gradients independent of
    /// the worker count.
    fn backward_batch(&mut self, d_sigmas: &[f32], d_colors: &[Vec3], pool: &ThreadPool) {
        let n = self.batch.len;
        assert!(n > 0, "backward_batch without a cached query_batch");
        assert_eq!(d_sigmas.len(), n, "sigma gradient length mismatch");
        assert_eq!(d_colors.len(), n, "color gradient length mismatch");
        let density_mlp = &self.density_mlp;
        let color_mlp = &self.color_mlp;
        pool.scope(|s| {
            for (ci, chunk) in self.batch.chunks.iter_mut().enumerate() {
                let lo = ci * POINT_CHUNK;
                let hi = (lo + POINT_CHUNK).min(n);
                let ds = &d_sigmas[lo..hi];
                let dc = &d_colors[lo..hi];
                s.spawn(move |_| chunk.backward(density_mlp, color_mlp, ds, dc));
            }
        });
        for chunk in &self.batch.chunks {
            if chunk.compact {
                // Dead rows have exactly-zero feature gradients; skipping
                // them in the scatter is bitwise-identical (see
                // `HashGrid::backward_batch_cached_rows`).
                self.grid
                    .backward_batch_cached_rows(&chunk.lookups, &chunk.d_feats, &chunk.live);
            } else {
                self.grid
                    .backward_batch_cached(&chunk.lookups, &chunk.d_feats);
            }
            self.density_mlp.accumulate_gradients(&chunk.density_grads);
            self.color_mlp.accumulate_gradients(&chunk.color_grads);
        }
    }

    /// Backward for the phased/compacted query: identical to
    /// [`TrainableField::backward_batch`] — the chunk scratch remembers
    /// whether its color stage ran compacted and back-propagates
    /// accordingly.
    fn backward_batch_compacted(&mut self, d_sigmas: &[f32], d_colors: &[Vec3], pool: &ThreadPool) {
        self.backward_batch(d_sigmas, d_colors, pool);
    }

    /// The hash-grid address stream of the batch, on the trace bus. Both
    /// trainer engines call this with the same gathered point batch, so
    /// the streamed events are engine-independent by construction.
    fn stream_lookups(&self, points: &[Vec3], sink: &mut dyn TraceSink) {
        self.grid.stream_batch(points, sink);
    }

    /// Batched evaluation query: chunked like [`TrainableField::query_batch`]
    /// but with task-local scratch, since `&self` forbids touching the batch
    /// cache.
    fn query_eval_batch(
        &self,
        points: &[Vec3],
        dirs: &[Vec3],
        sigmas: &mut [f32],
        rgbs: &mut [Vec3],
        pool: &ThreadPool,
    ) {
        let n = points.len();
        assert_eq!(n, dirs.len(), "points/dirs length mismatch");
        assert_eq!(n, sigmas.len(), "sigma buffer mismatch");
        assert_eq!(n, rgbs.len(), "rgb buffer mismatch");
        let grid = &self.grid;
        let density_mlp = &self.density_mlp;
        let color_mlp = &self.color_mlp;
        let mut sigma_rest: &mut [f32] = sigmas;
        let mut rgb_rest: &mut [Vec3] = rgbs;
        pool.scope(|s| {
            for ci in 0..n.div_ceil(POINT_CHUNK) {
                let lo = ci * POINT_CHUNK;
                let hi = (lo + POINT_CHUNK).min(n);
                let (sigma_c, rest) = std::mem::take(&mut sigma_rest).split_at_mut(hi - lo);
                sigma_rest = rest;
                let (rgb_c, rest) = std::mem::take(&mut rgb_rest).split_at_mut(hi - lo);
                rgb_rest = rest;
                let pts = &points[lo..hi];
                let drs = &dirs[lo..hi];
                s.spawn(move |_| {
                    let mut scratch = ChunkScratch::default();
                    // `&self` eval: no touch collection (callers sync
                    // beforehand), so the encode computes its own cache.
                    scratch.forward(
                        grid,
                        density_mlp,
                        color_mlp,
                        pts,
                        drs,
                        sigma_c,
                        rgb_c,
                        false,
                    );
                });
            }
        });
    }

    /// Density phase of the phased evaluation query: fused encode →
    /// density MLP per fixed chunk into caller-owned scratch, leaving each
    /// chunk's activations cached for the color phase. Always supported.
    fn query_eval_batch_density(
        &self,
        points: &[Vec3],
        sigmas: &mut [f32],
        scratch: &mut EvalScratch,
        pool: &ThreadPool,
    ) -> bool {
        let n = points.len();
        assert_eq!(n, sigmas.len(), "sigma buffer mismatch");
        scratch.len = n;
        let n_chunks = n.div_ceil(POINT_CHUNK);
        // Monotone growth: a block with fewer chunks than its predecessor
        // must not drop (and re-allocate next block) the surplus scratch.
        if scratch.chunks.len() < n_chunks {
            scratch.chunks.resize_with(n_chunks, ChunkScratch::default);
        }
        let grid = &self.grid;
        let density_mlp = &self.density_mlp;
        let mut sigma_rest: &mut [f32] = sigmas;
        pool.scope(|s| {
            for (ci, chunk) in scratch.chunks[..n_chunks].iter_mut().enumerate() {
                let lo = ci * POINT_CHUNK;
                let hi = (lo + POINT_CHUNK).min(n);
                let (sigma_c, rest) = std::mem::take(&mut sigma_rest).split_at_mut(hi - lo);
                sigma_rest = rest;
                let pts = &points[lo..hi];
                // `&self` eval: callers sync beforehand, so the encode
                // computes its own corner cache (prefilled = false).
                s.spawn(move |_| chunk.forward_density(grid, density_mlp, pts, sigma_c, false));
            }
        });
        true
    }

    /// Color phase of the phased evaluation query over the live samples
    /// only — the `&self` analogue of
    /// [`TrainableField::query_batch_color_compacted`], with the same
    /// fixed-chunk (thread-count-independent) decomposition of `live`.
    fn query_eval_batch_color_compacted(
        &self,
        dirs: &[Vec3],
        live: &[u32],
        rgbs: &mut [Vec3],
        scratch: &mut EvalScratch,
        pool: &ThreadPool,
    ) {
        let n = scratch.len;
        assert_eq!(n, dirs.len(), "dirs length mismatch");
        assert_eq!(n, rgbs.len(), "rgb buffer mismatch");
        let n_chunks = n.div_ceil(POINT_CHUNK);
        // Split the global live list into chunk-local index lists.
        let mut cursor = 0usize;
        for (ci, chunk) in scratch.chunks[..n_chunks].iter_mut().enumerate() {
            let lo = ci * POINT_CHUNK;
            let hi = (lo + POINT_CHUNK).min(n);
            chunk.live.clear();
            while cursor < live.len() && (live[cursor] as usize) < hi {
                chunk.live.push(live[cursor] - lo as u32);
                cursor += 1;
            }
        }
        assert_eq!(cursor, live.len(), "live indices out of range");
        let dout = self.density_mlp.out_dim();
        let color_mlp = &self.color_mlp;
        let mut rgb_rest: &mut [Vec3] = rgbs;
        pool.scope(|s| {
            for (ci, chunk) in scratch.chunks[..n_chunks].iter_mut().enumerate() {
                let lo = ci * POINT_CHUNK;
                let hi = (lo + POINT_CHUNK).min(n);
                let (rgb_c, rest) = std::mem::take(&mut rgb_rest).split_at_mut(hi - lo);
                rgb_rest = rest;
                let drs = &dirs[lo..hi];
                s.spawn(move |_| chunk.forward_color_compacted(color_mlp, dout, drs, rgb_c));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_path_parse_rejects_unknown_values_by_name() {
        assert_eq!(OptPath::parse("dense"), Ok(OptPath::Dense));
        assert_eq!(OptPath::parse(" DENSE "), Ok(OptPath::Dense));
        assert_eq!(OptPath::parse("sparse"), Ok(OptPath::Sparse));
        assert_eq!(OptPath::parse(""), Ok(OptPath::Sparse));
        for bad in ["densse", "lazy", "fast"] {
            let err = OptPath::parse(bad).unwrap_err();
            assert!(
                err.contains("INERF_OPT") && err.contains(bad),
                "error must name the variable and the offending value: {err}"
            );
        }
    }

    #[test]
    fn query_output_ranges() {
        let mut m = IngpModel::new(ModelConfig::tiny(), 3);
        m.begin_batch();
        let (sigma, rgb) = m.query(Vec3::splat(0.4), Vec3::new(0.0, 0.0, 1.0));
        assert!(sigma > 0.0 && sigma.is_finite());
        for ch in [rgb.x, rgb.y, rgb.z] {
            assert!((0.0..=1.0).contains(&ch));
        }
    }

    #[test]
    fn eval_matches_train_query() {
        let mut m = IngpModel::new(ModelConfig::tiny(), 5);
        m.begin_batch();
        let p = Vec3::new(0.2, 0.8, 0.6);
        let d = Vec3::new(0.0, 1.0, 0.0);
        let (s1, c1) = m.query(p, d);
        let (s2, c2) = m.query_eval(p, d);
        assert_eq!(s1, s2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn direction_encoding_basis() {
        let e = direction_encoding(Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(e[0], 1.0);
        assert_eq!(e[3], 1.0);
        assert_eq!(e[8], 2.0); // 3z^2 - 1
        let e2 = direction_encoding(Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(e2[7], 1.0); // x^2 - y^2
    }

    #[test]
    fn backward_touches_all_parameter_groups() {
        let mut m = IngpModel::new(ModelConfig::tiny(), 9);
        m.begin_batch();
        let p = Vec3::splat(0.5);
        m.query(p, Vec3::new(0.0, 0.0, 1.0));
        m.backward(0, 1.0, Vec3::ONE);
        assert!(
            m.grid.gradients().iter().any(|&g| g != 0.0),
            "grid gradients empty"
        );
        let before = m.grid.parameters().to_vec();
        m.apply_gradients();
        let after = m.grid.parameters();
        assert!(
            before.iter().zip(after).any(|(a, b)| a != b),
            "optimizer step did not move grid parameters"
        );
    }

    #[test]
    fn gradient_descent_fits_single_point_color() {
        // Overfit a single point's color: loss must drop substantially.
        let mut m = IngpModel::new(ModelConfig::tiny(), 1);
        let p = Vec3::new(0.3, 0.4, 0.5);
        let d = Vec3::new(0.0, 0.0, 1.0);
        let target = Vec3::new(0.9, 0.1, 0.4);
        let loss_of = |c: Vec3| (c - target).length_squared();
        m.begin_batch();
        let (_, c0) = m.query(p, d);
        let initial = loss_of(c0);
        for _ in 0..60 {
            m.begin_batch();
            let (_, c) = m.query(p, d);
            let d_color = (c - target) * 2.0;
            m.backward(0, 0.0, d_color);
            m.apply_gradients();
        }
        let (_, c_final) = m.query_eval(p, d);
        let fin = loss_of(c_final);
        assert!(
            fin < initial * 0.1,
            "color loss {initial} -> {fin} did not drop 10x"
        );
    }

    #[test]
    fn parameter_count_consistent() {
        let m = IngpModel::new(ModelConfig::tiny(), 2);
        let grid_n = m.config().grid.parameter_count();
        assert!(m.parameter_count() > grid_n);
    }

    #[test]
    #[should_panic]
    fn backward_out_of_range_panics() {
        let mut m = IngpModel::new(ModelConfig::tiny(), 2);
        m.begin_batch();
        m.backward(0, 1.0, Vec3::ZERO);
    }
}

#[cfg(test)]
mod clip_tests {
    use super::*;

    #[test]
    fn clip_scale_math() {
        assert_eq!(clip_scale(1.0, 32.0), 1.0);
        let s = clip_scale((64.0f64) * 64.0, 32.0);
        assert!((s - 0.5).abs() < 1e-6);
    }

    #[test]
    fn f64_clip_norm_unchanged_by_skipping_zero_terms() {
        // The sparse path's clip-norm accumulates only touched entries, in
        // ascending index order; every skipped (untouched) entry holds an
        // exactly-zero gradient whose square contributes `+0.0`. The f64
        // accumulator starts at +0.0 and only ever adds squares, so it is
        // never -0.0, and `x + (+0.0) == x` bitwise for every such x —
        // skipping the zero terms cannot change a single intermediate bit.
        let grads: Vec<f32> = (0..1000)
            .map(|i| match i % 3 {
                0 => ((i as f32) * 0.37).sin() * 1e-3,
                1 => 0.0,
                _ => -0.0,
            })
            .collect();
        let dense: f64 = grads.iter().map(|&g| (g as f64) * (g as f64)).sum();
        let sparse: f64 = grads
            .iter()
            .filter(|&&g| g != 0.0)
            .map(|&g| (g as f64) * (g as f64))
            .sum();
        assert_eq!(dense.to_bits(), sparse.to_bits());
        assert_eq!(
            clip_scale(dense, 1e-3).to_bits(),
            clip_scale(sparse, 1e-3).to_bits()
        );
    }

    #[test]
    fn huge_gradients_do_not_explode_parameters() {
        let mut m = IngpModel::new(ModelConfig::tiny(), 4);
        m.begin_batch();
        let p = Vec3::splat(0.5);
        m.query(p, Vec3::new(0.0, 0.0, 1.0));
        // Inject a pathological loss gradient.
        m.backward(0, 1e6, Vec3::splat(1e6));
        m.apply_gradients();
        let max = m
            .grid
            .parameters()
            .iter()
            .fold(0.0f32, |a, &v| a.max(v.abs()));
        assert!(max < 1.0, "clipped step must stay bounded, max param {max}");
        let (_, rgb) = m.query_eval(p, Vec3::new(0.0, 0.0, 1.0));
        assert!(rgb.is_finite());
    }
}
