//! No-gradient render engine: occupancy-culled, early-terminating,
//! allocation-free view rendering.
//!
//! Rendering used to be the naive spine in `train.rs`: every ray densely
//! sampled across the full AABB, every sample paying both MLPs, six fresh
//! `Vec`s per 2048-pixel block, serial ray generation. This module replaces
//! it with a five-stage block pipeline whose cost tracks *visible* work:
//!
//! 1. **Parallel ray generation** — fixed `GEN_CHUNK`-pixel tasks on the
//!    pool, each with its own pooled scratch, spliced in task order (so the
//!    block layout is identical at any thread count). With
//!    [`RenderOpts::culling`] and an [`OccupancyGrid`], samples in empty
//!    cells are dropped here and never reach the model.
//! 2. **Density phase** — the fused encode→density-MLP eval path
//!    ([`TrainableField::query_eval_batch_density`]) over every surviving
//!    sample, into engine-owned [`EvalScratch`]. Models without phased
//!    evaluation fall back to the dense [`TrainableField::query_eval_batch`].
//! 3. **Transmittance scan** — a scalar sweep replicating the composite
//!    recurrence operation for operation (`σ.max(0)`, `α = 1 − e^{−σ·δ}`,
//!    `w = T·α`, `T ← T·(1−α)`), recording each sample's blend weight and
//!    truncating the ray where `T` reaches exactly `0.0` (always — bitwise
//!    neutral, see below) or falls under
//!    [`RenderOpts::early_term_threshold`] (when
//!    [`RenderOpts::early_term`] is set).
//! 4. **Color phase** — the compacted color MLP
//!    ([`TrainableField::query_eval_batch_color_compacted`]) over surviving
//!    samples only.
//! 5. **Blend** — `color += rgb[i] · w[i]` per ray in sample order, then
//!    one pixel write per ray.
//!
//! # Determinism and the bitwise reference contract
//!
//! With [`RenderOpts::reference`] (culling and early termination off) the
//! output is **bitwise-identical** to the pre-engine `render_view`:
//!
//! * Blocks regroup pixels (fixed raw-pixel blocks instead of hit-pixel
//!   blocks), but all math is per-ray/per-sample, so regrouping cannot
//!   change any bit.
//! * The scan performs exactly the composite recurrence's per-sample
//!   float operations in the same order; deferring the color accumulation
//!   to stage 5 is bitwise-free because the weight/transmittance chain
//!   never reads the color accumulator.
//! * Truncating a ray once `T` reaches exactly `0.0` drops only samples
//!   whose weight is `+0.0`; colors are sigmoid outputs (never negative,
//!   never NaN), so each dropped term contributes `+0.0` and the
//!   accumulator is never `-0.0` — the sum's bits cannot change. This is
//!   the same argument (and machinery) the training path proved with
//!   `compaction_is_bitwise_free_and_skips_dead_color_work`.
//!
//! Every stage uses fixed chunk boundaries (`GEN_CHUNK` pixels here, the
//! model's point chunks inside the query) and ordered serial reductions,
//! so results are independent of the pool's thread count, and the SIMD
//! backend contract (every backend bitwise-identical) carries over
//! unchanged.
//!
//! Steady-state renders are allocation-free in the engine: every buffer
//! lives in a persistent arena ([`RenderEngine`] mirrors the trainer's
//! `BatchArena` growth-event accounting, see
//! [`RenderEngine::growth_events`]).

use crate::engine;
use crate::model::{EvalScratch, TrainableField};
use crate::occupancy::OccupancyGrid;
use inerf_geom::{Aabb, Camera, Vec3};
use inerf_render::volume::RaySpan;
use inerf_scenes::{psnr_from_mse, Dataset, Image};
use rayon::ThreadPool;
use std::time::Instant;

/// Pixels per render block: bounds the SoA buffers to block-sized batches
/// (a whole-frame batch would be `width × height × samples_per_ray`
/// samples — gigabytes for a production-size view) while keeping each
/// block large enough to fill the model's point chunks.
const BLOCK_PIXELS: usize = 2048;

/// Pixels per ray-generation task. Fixed (not derived from the worker
/// count) so the task decomposition — and with it the spliced block
/// layout — is identical at any thread count.
const GEN_CHUNK: usize = 256;

/// Default transmittance floor for early ray termination: once a ray's
/// remaining transmittance falls below this, every further sample could
/// contribute less than `1e-4` per channel — under half a quantization
/// step of 8-bit output — so the ray stops sampling.
pub const EARLY_TERM_THRESHOLD: f32 = 1e-4;

/// Inference fast-path switches. The default enables everything; use
/// [`RenderOpts::reference`] for the pinned bitwise-exact semantics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderOpts {
    /// Skip samples in cells an [`OccupancyGrid`] marks empty (requires a
    /// grid at the call site; without one this switch is inert).
    pub culling: bool,
    /// Stop sampling a ray once its transmittance falls below
    /// `early_term_threshold`.
    pub early_term: bool,
    /// Transmittance floor for `early_term`
    /// (default [`EARLY_TERM_THRESHOLD`]).
    pub early_term_threshold: f32,
}

impl RenderOpts {
    /// Exact reference semantics: no culling, no early termination.
    /// Output is bitwise-identical to the pre-engine `render_view`
    /// (pinned by the golden render-equivalence tests).
    pub fn reference() -> Self {
        RenderOpts {
            culling: false,
            early_term: false,
            early_term_threshold: 0.0,
        }
    }

    /// The full fast path: occupancy culling plus early termination at
    /// [`EARLY_TERM_THRESHOLD`].
    pub fn fast() -> Self {
        RenderOpts {
            culling: true,
            early_term: true,
            early_term_threshold: EARLY_TERM_THRESHOLD,
        }
    }
}

impl Default for RenderOpts {
    fn default() -> Self {
        RenderOpts::fast()
    }
}

/// Work and stage-time accounting of the last
/// [`RenderEngine::render_view_into`] call — the attribution record behind
/// `BENCH_render.json` (culling wins vs kernel wins).
#[derive(Debug, Clone, Copy, Default)]
pub struct RenderStats {
    /// Total pixels in the rendered view.
    pub pixels: u64,
    /// Rays whose AABB intersection is non-degenerate (what the reference
    /// path samples densely).
    pub rays_hit: u64,
    /// Rays that kept at least one sample after culling.
    pub rays_rendered: u64,
    /// Samples the reference path would evaluate:
    /// `rays_hit × samples_per_ray`.
    pub samples_dense: u64,
    /// Samples dropped by occupancy culling before reaching the model.
    pub samples_culled: u64,
    /// Samples evaluated by the density MLP.
    pub samples_density: u64,
    /// Samples evaluated by the color MLP (early termination and the
    /// exact-zero cut skip the rest).
    pub samples_color: u64,
    /// Wall-clock of the parallel ray-generation + splice stage.
    pub gen_ns: u64,
    /// Wall-clock of the density (or dense fallback) query stage.
    pub density_ns: u64,
    /// Wall-clock of the transmittance scan.
    pub scan_ns: u64,
    /// Wall-clock of the compacted color query stage.
    pub color_ns: u64,
    /// Wall-clock of the blend-and-write stage.
    pub blend_ns: u64,
}

impl RenderStats {
    /// Fraction of dense samples that occupancy culling removed.
    pub fn culled_fraction(&self) -> f64 {
        if self.samples_dense == 0 {
            return 0.0;
        }
        self.samples_culled as f64 / self.samples_dense as f64
    }

    /// Color-MLP samples actually paid per pixel — the "effective"
    /// sampling rate after culling and early termination.
    pub fn samples_per_pixel_effective(&self) -> f64 {
        if self.pixels == 0 {
            return 0.0;
        }
        self.samples_color as f64 / self.pixels as f64
    }
}

/// Per-task scratch of the parallel ray-generation stage. Each task owns
/// one, so generation shares nothing and the splice (serial, task order)
/// fixes the block layout.
#[derive(Debug, Clone, Default)]
struct GenScratch {
    ts: Vec<f32>,
    filtered: Vec<f32>,
    points: Vec<Vec3>,
    dirs: Vec<Vec3>,
    /// Task-relative span starts; rebased during the splice.
    spans: Vec<RaySpan>,
    pixels: Vec<(u32, u32)>,
    rays_hit: u64,
    samples_culled: u64,
}

impl GenScratch {
    fn capacity_sum(&self) -> usize {
        self.ts.capacity()
            + self.filtered.capacity()
            + self.points.capacity()
            + self.dirs.capacity()
            + self.spans.capacity()
            + self.pixels.capacity()
    }

    /// Generates rays for raw pixel indices `lo..hi` (row-major). The ray
    /// setup (intersection epsilon, `t_near` clamp, stratified sampling,
    /// uniform `dt`) matches the reference path operation for operation;
    /// culling only removes `ts` entries, never changes them.
    fn generate(
        &mut self,
        camera: &Camera,
        bounds: &Aabb,
        samples_per_ray: usize,
        grid: Option<&OccupancyGrid>,
        lo: usize,
        hi: usize,
    ) {
        self.points.clear();
        self.dirs.clear();
        self.spans.clear();
        self.pixels.clear();
        self.rays_hit = 0;
        self.samples_culled = 0;
        for idx in lo..hi {
            let px = idx as u32 % camera.width;
            let py = idx as u32 / camera.width;
            let ray = camera.ray_for_pixel(px, py);
            let Some(hit) = bounds.intersect(&ray) else {
                continue;
            };
            if hit.t_far - hit.t_near < 1e-5 {
                continue;
            }
            self.rays_hit += 1;
            ray.stratified_ts_into(
                hit.t_near.max(1e-4),
                hit.t_far,
                samples_per_ray,
                None,
                &mut self.ts,
            );
            let dt = (hit.t_far - hit.t_near.max(1e-4)) / samples_per_ray as f32;
            let ts: &[f32] = if let Some(g) = grid {
                self.samples_culled +=
                    g.filter_ts_into(&ray, bounds, &self.ts, &mut self.filtered) as u64;
                &self.filtered
            } else {
                &self.ts
            };
            if ts.is_empty() {
                // Every sample fell in marked-empty space: the pixel keeps
                // the background (black) without touching the model — what
                // compositing all-empty samples would produce.
                continue;
            }
            let start = self.points.len();
            for &t in ts {
                self.points.push(bounds.normalize(ray.at(t)));
                self.dirs.push(ray.direction);
            }
            self.spans.push(RaySpan {
                start,
                len: ts.len(),
                dt,
            });
            self.pixels.push((px, py));
        }
    }
}

/// Pooled per-block buffers of the render engine: every
/// structure-of-arrays buffer the pipeline fills lives here and is reused
/// across blocks and renders, so steady-state rendering performs no
/// per-block heap allocation in the engine itself. (The remaining
/// per-block allocations are the thread-pool spawn closures boxed inside
/// the vendored rayon — a fixed per-task cost, same caveat as the training
/// arena.)
#[derive(Debug, Clone, Default)]
struct RenderArena {
    /// Per-task ray-generation scratch (grows monotonically — a block with
    /// fewer tasks never drops the surplus).
    gen: Vec<GenScratch>,
    points: Vec<Vec3>,
    dirs: Vec<Vec3>,
    spans: Vec<RaySpan>,
    pixels: Vec<(u32, u32)>,
    sigmas: Vec<f32>,
    rgbs: Vec<Vec3>,
    /// Per-sample blend weights from the scan (valid up to each span's
    /// cut).
    weights: Vec<f32>,
    /// Per-span survivor count (samples before the termination cut).
    cuts: Vec<u32>,
    /// Ascending global indices of samples the color phase must evaluate.
    live: Vec<u32>,
}

impl RenderArena {
    /// Total capacity across every pooled buffer, in elements. Capacities
    /// never shrink (nothing here calls `shrink_to_fit`), so the sum grows
    /// if and only if some buffer reallocated.
    fn capacity_sum(&self) -> usize {
        self.gen.capacity()
            + self.gen.iter().map(GenScratch::capacity_sum).sum::<usize>()
            + self.points.capacity()
            + self.dirs.capacity()
            + self.spans.capacity()
            + self.pixels.capacity()
            + self.sigmas.capacity()
            + self.rgbs.capacity()
            + self.weights.capacity()
            + self.cuts.capacity()
            + self.live.capacity()
    }
}

/// Borrowed per-view inputs threaded through the block pipeline.
struct ViewCtx<'a> {
    camera: &'a Camera,
    bounds: &'a Aabb,
    samples_per_ray: usize,
    /// Occupancy grid, already gated on [`RenderOpts::culling`].
    grid: Option<&'a OccupancyGrid>,
    opts: &'a RenderOpts,
    pool: &'a ThreadPool,
}

/// The persistent no-gradient render engine: a `RenderArena`, the
/// model-side [`EvalScratch`], and the work/stage-time stats of the last
/// render. One engine per `Trainer` (or per serving tenant); construct
/// with `Default` and reuse — reuse is what makes steady-state renders
/// allocation-free.
#[derive(Debug, Clone, Default)]
pub struct RenderEngine {
    arena: RenderArena,
    scratch: EvalScratch,
    stats: RenderStats,
    growth_events: u64,
    cap_mark: usize,
}

impl RenderEngine {
    /// Renders `camera`'s view of the model into a fresh image. See
    /// [`RenderEngine::render_view_into`].
    #[allow(clippy::too_many_arguments)]
    pub fn render_view<M: TrainableField>(
        &mut self,
        model: &M,
        camera: &Camera,
        bounds: &Aabb,
        samples_per_ray: usize,
        grid: Option<&OccupancyGrid>,
        opts: &RenderOpts,
        pool: &ThreadPool,
    ) -> Image {
        let mut img = Image::new(camera.width, camera.height);
        self.render_view_into(
            model,
            camera,
            bounds,
            samples_per_ray,
            grid,
            opts,
            pool,
            &mut img,
        );
        img
    }

    /// Renders into a caller-pooled image (cleared to black first), so
    /// render loops reuse one buffer instead of allocating per view.
    ///
    /// Takes the model read-only: callers holding a model with lazily
    /// deferred optimizer updates must flush them first
    /// ([`TrainableField::sync_parameters`]); models from
    /// [`crate::train::Trainer::into_model`] are already synced.
    ///
    /// # Panics
    ///
    /// Panics if `img`'s dimensions disagree with the camera's.
    #[allow(clippy::too_many_arguments)]
    pub fn render_view_into<M: TrainableField>(
        &mut self,
        model: &M,
        camera: &Camera,
        bounds: &Aabb,
        samples_per_ray: usize,
        grid: Option<&OccupancyGrid>,
        opts: &RenderOpts,
        pool: &ThreadPool,
        img: &mut Image,
    ) {
        assert_eq!(img.width(), camera.width, "image width mismatch");
        assert_eq!(img.height(), camera.height, "image height mismatch");
        img.pixels_mut().fill(Vec3::ZERO);
        self.stats = RenderStats::default();
        let total = camera.width as usize * camera.height as usize;
        self.stats.pixels = total as u64;
        let ctx = ViewCtx {
            camera,
            bounds,
            samples_per_ray,
            grid: if opts.culling { grid } else { None },
            opts,
            pool,
        };
        let mut lo = 0;
        while lo < total {
            let hi = (lo + BLOCK_PIXELS).min(total);
            self.cap_mark = self.arena.capacity_sum() + self.scratch.capacity_sum();
            self.render_block(model, &ctx, lo, hi, img);
            if self.arena.capacity_sum() + self.scratch.capacity_sum() > self.cap_mark {
                self.growth_events += 1;
            }
            lo = hi;
        }
        self.stats.samples_dense = self.stats.rays_hit * samples_per_ray as u64;
    }

    /// Mean PSNR over the dataset's held-out test views, rendered through
    /// this engine (views in order, per-view MSE accumulated serially for
    /// determinism; within each view every stage is pool-parallel). The
    /// image buffer is reused across same-sized views, and
    /// [`RenderEngine::last_stats`] afterwards describes the final view.
    ///
    /// # Panics
    ///
    /// Panics if the dataset has no test views.
    pub fn eval_psnr<M: TrainableField>(
        &mut self,
        model: &M,
        dataset: &Dataset,
        samples_per_ray: usize,
        grid: Option<&OccupancyGrid>,
        opts: &RenderOpts,
        pool: &ThreadPool,
    ) -> f64 {
        assert!(!dataset.test_views.is_empty(), "dataset has no test views");
        let first = &dataset.test_views[0].camera;
        let mut img = Image::new(first.width, first.height);
        let mut total_mse = 0.0f64;
        for view in &dataset.test_views {
            if img.width() != view.camera.width || img.height() != view.camera.height {
                img = Image::new(view.camera.width, view.camera.height);
            }
            self.render_view_into(
                model,
                &view.camera,
                &dataset.bounds,
                samples_per_ray,
                grid,
                opts,
                pool,
                &mut img,
            );
            total_mse += inerf_scenes::mse(&img, &view.image);
        }
        psnr_from_mse(total_mse / dataset.test_views.len() as f64)
    }

    /// Blocks (since construction) that grew some pooled buffer's
    /// capacity. Flat across steady-state renders — the zero-allocation
    /// test hook, mirroring the training arena's accounting.
    pub fn growth_events(&self) -> u64 {
        self.growth_events
    }

    /// Work and stage-time accounting of the most recent render.
    pub fn last_stats(&self) -> &RenderStats {
        &self.stats
    }

    /// One block of the pipeline: generate → density → scan → color →
    /// blend, over raw pixel indices `lo..hi`.
    fn render_block<M: TrainableField>(
        &mut self,
        model: &M,
        ctx: &ViewCtx<'_>,
        lo: usize,
        hi: usize,
        img: &mut Image,
    ) {
        let arena = &mut self.arena;
        // inerf-lint: allow(wall-clock) -- stage telemetry only: feeds RenderStats/BENCH_render.json, never a simulated statistic
        let t_gen = Instant::now();
        let n_tasks = (hi - lo).div_ceil(GEN_CHUNK);
        if arena.gen.len() < n_tasks {
            arena.gen.resize_with(n_tasks, GenScratch::default);
        }
        let (camera, bounds, spp, grid) = (ctx.camera, ctx.bounds, ctx.samples_per_ray, ctx.grid);
        ctx.pool.scope(|s| {
            for (k, g) in arena.gen[..n_tasks].iter_mut().enumerate() {
                let task_lo = lo + k * GEN_CHUNK;
                let task_hi = (task_lo + GEN_CHUNK).min(hi);
                s.spawn(move |_| g.generate(camera, bounds, spp, grid, task_lo, task_hi));
            }
        });
        // Splice task outputs in task order: fixed GEN_CHUNK boundaries
        // plus ordered concatenation make the block layout — and with it
        // every downstream result — thread-count-independent.
        arena.points.clear();
        arena.dirs.clear();
        arena.spans.clear();
        arena.pixels.clear();
        for g in &arena.gen[..n_tasks] {
            let base = arena.points.len();
            arena.points.extend_from_slice(&g.points);
            arena.dirs.extend_from_slice(&g.dirs);
            arena.spans.extend(g.spans.iter().map(|s| RaySpan {
                start: base + s.start,
                ..*s
            }));
            arena.pixels.extend_from_slice(&g.pixels);
            self.stats.rays_hit += g.rays_hit;
            self.stats.samples_culled += g.samples_culled;
        }
        self.stats.gen_ns += t_gen.elapsed().as_nanos() as u64;
        if arena.spans.is_empty() {
            return;
        }
        let n = arena.points.len();
        self.stats.samples_density += n as u64;

        // inerf-lint: allow(wall-clock) -- stage telemetry only: feeds RenderStats/BENCH_render.json, never a simulated statistic
        let t_density = Instant::now();
        arena.sigmas.resize(n, 0.0);
        let phased = model.query_eval_batch_density(
            &arena.points,
            &mut arena.sigmas,
            &mut self.scratch,
            ctx.pool,
        );
        if !phased {
            // Dense fallback (per-point baseline models): both MLPs for
            // every sample up front; culling and the scan's truncation
            // still shape the composite below.
            arena.rgbs.resize(n, Vec3::ZERO);
            model.query_eval_batch(
                &arena.points,
                &arena.dirs,
                &mut arena.sigmas,
                &mut arena.rgbs,
                ctx.pool,
            );
        }
        self.stats.density_ns += t_density.elapsed().as_nanos() as u64;

        // inerf-lint: allow(wall-clock) -- stage telemetry only: feeds RenderStats/BENCH_render.json, never a simulated statistic
        let t_scan = Instant::now();
        scan_spans(
            &arena.sigmas,
            &arena.spans,
            ctx.opts,
            &mut arena.weights,
            &mut arena.cuts,
            &mut arena.live,
        );
        self.stats.scan_ns += t_scan.elapsed().as_nanos() as u64;

        // inerf-lint: allow(wall-clock) -- stage telemetry only: feeds RenderStats/BENCH_render.json, never a simulated statistic
        let t_color = Instant::now();
        if phased {
            arena.rgbs.resize(n, Vec3::ZERO);
            model.query_eval_batch_color_compacted(
                &arena.dirs,
                &arena.live,
                &mut arena.rgbs,
                &mut self.scratch,
                ctx.pool,
            );
            self.stats.samples_color += arena.live.len() as u64;
        } else {
            self.stats.samples_color += n as u64;
        }
        self.stats.color_ns += t_color.elapsed().as_nanos() as u64;

        // inerf-lint: allow(wall-clock) -- stage telemetry only: feeds RenderStats/BENCH_render.json, never a simulated statistic
        let t_blend = Instant::now();
        for (r, span) in arena.spans.iter().enumerate() {
            let cut = arena.cuts[r] as usize;
            let mut color = Vec3::ZERO;
            for i in span.start..span.start + cut {
                color += arena.rgbs[i] * arena.weights[i];
            }
            let (px, py) = arena.pixels[r];
            img.set(px, py, color);
        }
        self.stats.rays_rendered += arena.spans.len() as u64;
        self.stats.blend_ns += t_blend.elapsed().as_nanos() as u64;
    }
}

/// Transmittance scan over a block's spans: replicates the composite
/// recurrence operation for operation, recording each sample's blend
/// weight, appending survivors to `live` (ascending global indices), and
/// cutting each span where transmittance reaches exactly `0.0` (always —
/// every later weight is `+0.0`, so dropping those terms is bitwise-free)
/// or falls below the early-termination threshold (opt-in, approximate).
///
/// Unlike the training-path scan this must not take the conservative
/// optical-depth shortcut: the early-termination cut is threshold-based,
/// not exact-zero-based, so every span walks the real recurrence.
fn scan_spans(
    sigmas: &[f32],
    spans: &[RaySpan],
    opts: &RenderOpts,
    weights: &mut Vec<f32>,
    cuts: &mut Vec<u32>,
    live: &mut Vec<u32>,
) {
    weights.resize(sigmas.len(), 0.0);
    cuts.clear();
    live.clear();
    for span in spans {
        let mut transmittance = 1.0f32;
        let mut cut = span.len;
        for i in 0..span.len {
            let idx = span.start + i;
            let sigma = sigmas[idx].max(0.0);
            let alpha = 1.0 - (-sigma * span.dt).exp();
            weights[idx] = transmittance * alpha;
            transmittance *= 1.0 - alpha;
            live.push(idx as u32);
            if transmittance == 0.0
                || (opts.early_term && transmittance < opts.early_term_threshold)
            {
                cut = i + 1;
                break;
            }
        }
        cuts.push(cut as u32);
    }
}

/// Renders `camera`'s image from any trained field on the default pool,
/// with exact reference semantics ([`RenderOpts::reference`]).
///
/// Takes the model read-only: callers holding a model with lazily deferred
/// optimizer updates must flush them first
/// ([`TrainableField::sync_parameters`]); models from
/// [`crate::train::Trainer::into_model`] are already synced.
pub fn render_view<M: TrainableField>(
    model: &M,
    camera: &Camera,
    bounds: &Aabb,
    samples_per_ray: usize,
) -> Image {
    render_view_with_pool(
        model,
        camera,
        bounds,
        samples_per_ray,
        &engine::default_pool(),
    )
}

/// [`render_view`] on an explicit thread pool.
pub fn render_view_with_pool<M: TrainableField>(
    model: &M,
    camera: &Camera,
    bounds: &Aabb,
    samples_per_ray: usize,
    pool: &ThreadPool,
) -> Image {
    render_view_opts(
        model,
        camera,
        bounds,
        samples_per_ray,
        None,
        &RenderOpts::reference(),
        pool,
    )
}

/// [`render_view_with_pool`] with explicit fast-path switches and an
/// optional occupancy grid (one-shot: constructs a throwaway engine; hold
/// a [`RenderEngine`] to render allocation-free in steady state).
pub fn render_view_opts<M: TrainableField>(
    model: &M,
    camera: &Camera,
    bounds: &Aabb,
    samples_per_ray: usize,
    grid: Option<&OccupancyGrid>,
    opts: &RenderOpts,
    pool: &ThreadPool,
) -> Image {
    RenderEngine::default().render_view(model, camera, bounds, samples_per_ray, grid, opts, pool)
}

/// Mean PSNR of a model over a dataset's held-out test views, on the
/// default pool with reference semantics. Read-only over the model — see
/// [`render_view`] for the sync requirement on lazily-optimized models.
pub fn eval_psnr<M: TrainableField>(model: &M, dataset: &Dataset, samples_per_ray: usize) -> f64 {
    eval_psnr_with_pool(model, dataset, samples_per_ray, &engine::default_pool())
}

/// [`eval_psnr`] on an explicit thread pool.
pub fn eval_psnr_with_pool<M: TrainableField>(
    model: &M,
    dataset: &Dataset,
    samples_per_ray: usize,
    pool: &ThreadPool,
) -> f64 {
    eval_psnr_opts(
        model,
        dataset,
        samples_per_ray,
        None,
        &RenderOpts::reference(),
        pool,
    )
}

/// [`eval_psnr_with_pool`] with explicit fast-path switches and an
/// optional occupancy grid (one-shot; hold a [`RenderEngine`] to evaluate
/// allocation-free in steady state).
pub fn eval_psnr_opts<M: TrainableField>(
    model: &M,
    dataset: &Dataset,
    samples_per_ray: usize,
    grid: Option<&OccupancyGrid>,
    opts: &RenderOpts,
    pool: &ThreadPool,
) -> f64 {
    RenderEngine::default().eval_psnr(model, dataset, samples_per_ray, grid, opts, pool)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_opts_disable_everything() {
        let r = RenderOpts::reference();
        assert!(!r.culling && !r.early_term);
        // A threshold of 0.0 is inert even if early_term were set:
        // transmittance is never negative.
        assert_eq!(r.early_term_threshold, 0.0);
    }

    #[test]
    fn default_opts_are_the_fast_path() {
        let d = RenderOpts::default();
        assert!(d.culling && d.early_term);
        assert_eq!(d.early_term_threshold, EARLY_TERM_THRESHOLD);
    }

    #[test]
    fn scan_matches_composite_weights_and_cuts_on_early_term() {
        // Moderate densities: no exact-zero cut, so reference opts keep
        // everything; a loose threshold cuts early.
        let sigmas = vec![1.5f32; 8];
        let spans = [RaySpan {
            start: 0,
            len: 8,
            dt: 0.5,
        }];
        let mut weights = Vec::new();
        let mut cuts = Vec::new();
        let mut live = Vec::new();
        scan_spans(
            &sigmas,
            &spans,
            &RenderOpts::reference(),
            &mut weights,
            &mut cuts,
            &mut live,
        );
        assert_eq!(cuts, vec![8]);
        assert_eq!(live.len(), 8);
        let samples: Vec<inerf_render::volume::SamplePoint> = sigmas
            .iter()
            .map(|&sigma| inerf_render::volume::SamplePoint {
                sigma,
                color: Vec3::ONE,
            })
            .collect();
        let out = inerf_render::volume::composite_uniform(&samples, 0.5);
        for (i, &w) in weights.iter().enumerate() {
            assert_eq!(w.to_bits(), out.weights[i].to_bits(), "weight {i}");
        }
        // T after k samples is (1-α)^k with α = 1-e^{-0.75} ≈ 0.5276;
        // a 0.05 floor is crossed after 4 samples.
        let opts = RenderOpts {
            culling: false,
            early_term: true,
            early_term_threshold: 0.05,
        };
        scan_spans(&sigmas, &spans, &opts, &mut weights, &mut cuts, &mut live);
        assert!(cuts[0] < 8, "threshold must cut the ray");
        assert_eq!(live.len(), cuts[0] as usize);
        let t_after = out.transmittance_after[cuts[0] as usize - 1];
        assert!(t_after < 0.05, "cut only once T crossed the floor");
        assert!(
            out.transmittance_after[cuts[0] as usize - 2] >= 0.05,
            "no earlier sample may already be under the floor"
        );
    }

    #[test]
    fn scan_cut_at_exact_zero_is_always_on() {
        // A wall of enormous density: T underflows to exactly 0.0; even
        // reference opts cut there (bitwise-free, the dropped weights are
        // all +0.0).
        let sigmas: Vec<f32> = (0..12).map(|i| 40.0 + 5.0 * i as f32).collect();
        let spans = [RaySpan {
            start: 0,
            len: 12,
            dt: 1.0,
        }];
        let mut weights = Vec::new();
        let mut cuts = Vec::new();
        let mut live = Vec::new();
        scan_spans(
            &sigmas,
            &spans,
            &RenderOpts::reference(),
            &mut weights,
            &mut cuts,
            &mut live,
        );
        assert!(cuts[0] < 12);
        assert_eq!(live.len(), cuts[0] as usize);
    }
}
