//! The occupancy grid: iNGP's empty-space-skipping structure.
//!
//! iNGP maintains a coarse binary grid marking which cells of the scene
//! volume currently contain density; ray marching skips samples in empty
//! cells, which concentrates the hash-table traffic on occupied space.
//! This is the mechanism the hardware experiments' scene-conditioned traces
//! emulate, implemented here for real: the grid is periodically refreshed
//! from the model's own density predictions and consulted during sampling.

use crate::model::TrainableField;
use inerf_geom::{Aabb, Ray, Vec3};
use serde::{Deserialize, Serialize};

/// A coarse binary occupancy grid over `[0,1]^3` (normalized coordinates).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OccupancyGrid {
    resolution: u32,
    /// One bit per cell, row-major (x fastest).
    bits: Vec<u64>,
}

impl OccupancyGrid {
    /// Creates a fully-occupied grid (conservative start: nothing skipped
    /// until the first refresh).
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is zero.
    pub fn new(resolution: u32) -> Self {
        assert!(resolution > 0, "occupancy grid resolution must be positive");
        let cells = (resolution as usize).pow(3);
        OccupancyGrid {
            resolution,
            bits: vec![u64::MAX; cells.div_ceil(64)],
        }
    }

    /// Grid resolution per axis.
    pub fn resolution(&self) -> u32 {
        self.resolution
    }

    /// Total cell count.
    pub fn cell_count(&self) -> usize {
        (self.resolution as usize).pow(3)
    }

    /// The raw bit words backing the grid (checkpoint capture).
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Rebuilds a grid from [`OccupancyGrid::words`] output.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is zero or `words` has the wrong length
    /// for it; callers restoring untrusted bytes must validate first
    /// and surface a typed error.
    pub fn from_words(resolution: u32, words: Vec<u64>) -> Self {
        assert!(resolution > 0, "occupancy grid resolution must be positive");
        let cells = (resolution as usize).pow(3);
        assert_eq!(
            words.len(),
            cells.div_ceil(64),
            "occupancy word count does not match resolution"
        );
        OccupancyGrid {
            resolution,
            bits: words,
        }
    }

    #[inline]
    fn cell_index(&self, p: Vec3) -> usize {
        let r = self.resolution as f32;
        let clamp = |v: f32| ((v.clamp(0.0, 1.0) * r).min(r - 1e-4)).floor() as usize;
        (clamp(p.z) * self.resolution as usize + clamp(p.y)) * self.resolution as usize + clamp(p.x)
    }

    /// Whether the cell containing normalized point `p` is marked occupied.
    #[inline]
    pub fn is_occupied(&self, p: Vec3) -> bool {
        let i = self.cell_index(p);
        self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    /// Marks or clears the cell containing `p`.
    pub fn set(&mut self, p: Vec3, occupied: bool) {
        let i = self.cell_index(p);
        if occupied {
            self.bits[i / 64] |= 1 << (i % 64);
        } else {
            self.bits[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Fraction of cells currently marked occupied.
    pub fn occupancy(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        // The last word may contain padding bits beyond cell_count; they are
        // never cleared, so subtract them.
        let pad = self.bits.len() * 64 - self.cell_count();
        (set as usize - pad) as f64 / self.cell_count() as f64
    }

    /// Refreshes the grid from the model's density predictions: each cell is
    /// probed at its centre (plus a body-diagonal jitter pattern of
    /// `probes` points) and marked occupied if any probe's density exceeds
    /// `threshold`.
    ///
    /// iNGP refreshes every few training iterations with an EMA; a periodic
    /// hard refresh reproduces the skipping behaviour at our scale.
    pub fn refresh<M: TrainableField>(&mut self, model: &M, threshold: f32, probes: u32) {
        let res = self.resolution;
        let dir = Vec3::new(0.0, 0.0, 1.0);
        for iz in 0..res {
            for iy in 0..res {
                for ix in 0..res {
                    let mut occupied = false;
                    for k in 0..probes.max(1) {
                        let f = (k as f32 + 0.5) / probes.max(1) as f32;
                        let p = Vec3::new(
                            (ix as f32 + f) / res as f32,
                            (iy as f32 + f) / res as f32,
                            (iz as f32 + f) / res as f32,
                        );
                        if model.query_eval(p, dir).0 > threshold {
                            occupied = true;
                            break;
                        }
                    }
                    let center = Vec3::new(
                        (ix as f32 + 0.5) / res as f32,
                        (iy as f32 + 0.5) / res as f32,
                        (iz as f32 + 0.5) / res as f32,
                    );
                    self.set(center, occupied);
                }
            }
        }
    }

    /// Filters stratified sample distances along a ray, keeping those whose
    /// normalized sample point lies in an occupied cell. Returns `(kept
    /// distances, skipped count)`.
    pub fn filter_ts(&self, ray: &Ray, bounds: &Aabb, ts: &[f32]) -> (Vec<f32>, usize) {
        let mut kept = Vec::with_capacity(ts.len());
        let skipped = self.filter_ts_into(ray, bounds, ts, &mut kept);
        (kept, skipped)
    }

    /// [`OccupancyGrid::filter_ts`] into a caller-pooled buffer (cleared
    /// and refilled), returning the skipped count; the gather loop reuses
    /// one buffer across rays instead of allocating per ray.
    pub fn filter_ts_into(
        &self,
        ray: &Ray,
        bounds: &Aabb,
        ts: &[f32],
        kept: &mut Vec<f32>,
    ) -> usize {
        kept.clear();
        let mut skipped = 0usize;
        for &t in ts {
            let p = bounds.normalize(ray.at(t));
            if self.is_occupied(p) {
                kept.push(t);
            } else {
                skipped += 1;
            }
        }
        skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{IngpModel, ModelConfig};
    use proptest::prelude::*;

    #[test]
    fn starts_fully_occupied() {
        let g = OccupancyGrid::new(8);
        assert_eq!(g.cell_count(), 512);
        assert!((g.occupancy() - 1.0).abs() < 1e-12);
        assert!(g.is_occupied(Vec3::splat(0.5)));
    }

    #[test]
    fn set_and_query_roundtrip() {
        let mut g = OccupancyGrid::new(4);
        let p = Vec3::new(0.9, 0.1, 0.6);
        g.set(p, false);
        assert!(!g.is_occupied(p));
        // A point in a different cell is unaffected.
        assert!(g.is_occupied(Vec3::new(0.1, 0.1, 0.6)));
        g.set(p, true);
        assert!(g.is_occupied(p));
    }

    #[test]
    fn occupancy_counts_exactly() {
        let mut g = OccupancyGrid::new(4); // 64 cells
        for iz in 0..4 {
            for iy in 0..4 {
                for ix in 0..4 {
                    g.set(
                        Vec3::new(
                            (ix as f32 + 0.5) / 4.0,
                            (iy as f32 + 0.5) / 4.0,
                            (iz as f32 + 0.5) / 4.0,
                        ),
                        false,
                    );
                }
            }
        }
        assert_eq!(g.occupancy(), 0.0);
        g.set(Vec3::splat(0.1), true);
        assert!((g.occupancy() - 1.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn refresh_clears_empty_space_of_untrained_model() {
        // A freshly initialized model has near-zero density nowhere above a
        // generous threshold, so the refresh empties the grid.
        let model = IngpModel::new(ModelConfig::tiny(), 3);
        let mut g = OccupancyGrid::new(8);
        g.refresh(&model, 10.0, 2);
        assert!(g.occupancy() < 0.05, "occupancy {}", g.occupancy());
    }

    #[test]
    fn filter_ts_skips_cleared_cells() {
        let mut g = OccupancyGrid::new(2);
        // Clear the -x half (cells with x < 0.5).
        for iz in 0..2 {
            for iy in 0..2 {
                g.set(
                    Vec3::new(0.25, (iy as f32 + 0.5) / 2.0, (iz as f32 + 0.5) / 2.0),
                    false,
                );
            }
        }
        let bounds = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
        let ray = Ray::new(Vec3::new(-2.0, 0.1, 0.1), Vec3::new(1.0, 0.0, 0.0));
        let ts: Vec<f32> = (0..16).map(|i| 1.0 + i as f32 * 0.125).collect();
        let (kept, skipped) = g.filter_ts(&ray, &bounds, &ts);
        assert!(skipped > 0, "some samples cross the cleared half");
        assert!(
            !kept.is_empty(),
            "some samples survive in the occupied half"
        );
        // Every kept sample is in the +x (occupied) half of the box.
        for &t in &kept {
            assert!(
                ray.at(t).x >= 0.0 - 0.0626,
                "kept sample at x={}",
                ray.at(t).x
            );
        }
        assert_eq!(kept.len() + skipped, ts.len());
    }

    proptest! {
        #[test]
        fn cell_index_in_bounds(
            px in -0.5f32..1.5, py in -0.5f32..1.5, pz in -0.5f32..1.5,
            res in 1u32..32
        ) {
            let g = OccupancyGrid::new(res);
            // is_occupied must never index out of bounds (clamping).
            let _ = g.is_occupied(Vec3::new(px, py, pz));
        }

        #[test]
        fn occupancy_between_zero_and_one(res in 1u32..16, clears in 0usize..32) {
            let mut g = OccupancyGrid::new(res);
            let mut s = 0x12345u64;
            for _ in 0..clears {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                let p = Vec3::new(
                    (s & 0xff) as f32 / 255.0,
                    ((s >> 8) & 0xff) as f32 / 255.0,
                    ((s >> 16) & 0xff) as f32 / 255.0,
                );
                g.set(p, false);
            }
            let occ = g.occupancy();
            prop_assert!((0.0..=1.0).contains(&occ));
        }
    }
}
