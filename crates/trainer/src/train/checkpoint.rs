//! Complete-training-state capture and bit-identical resume.
//!
//! A snapshot taken at an iteration boundary (after flushing lazily
//! deferred optimizer updates) captures *everything* the future
//! trajectory depends on:
//!
//! * the hash-grid [`ParamStore`] and all five MLP layer stores — f32
//!   masters plus, at fp16, the half-precision working copy (which
//!   doubles as an integrity cross-check and preserves the per-level
//!   table layout, so DRAM address mapping stays valid on load),
//! * the three Adam states: packed `{m, v, stamp}` records as bit
//!   patterns, the global step `t` (the lazy-replay epoch) and the mode
//!   flag,
//! * the trainer's RNG state (xoshiro256++ words), step counter,
//!   query counter, and the occupancy-grid state if enabled,
//! * a canonical encoding of `TrainConfig` + `ModelConfig` — the
//!   fingerprint a resume is validated against, so a mismatched resume
//!   is rejected with [`SnapshotError::ConfigMismatch`] instead of
//!   silently diverging.
//!
//! Deliberately *not* captured: gradient buffers (zeroed by
//! `begin_batch`), hash-grid touch stamps (behaviourally fresh after
//! the pre-snapshot sync leaves every Adam stamp equal to `t`), and the
//! engine scratch arenas (rebuilt on first use). The thread count is
//! also excluded — training results are thread-count independent by
//! construction, so a snapshot may be resumed at any parallelism.
//!
//! The resume-equivalence suite pins the headline property: train-2N
//! straight is *bitwise* identical (losses, master and working parameter
//! bits, DRAM request statistics) to train-N → snapshot → drop →
//! resume → train-N, across both engines, both precisions, both
//! optimizer paths, at 1/2/8 threads.

use super::{Engine, OccupancyState, TrainConfig, TrainReport, Trainer};
use crate::model::{IngpModel, ModelConfig, OptPath, TrainableField};
use crate::occupancy::OccupancyGrid;
use crate::streaming::StreamingOrder;
use inerf_encoding::{HashFunction, HashGridConfig};
use inerf_mlp::fp16::f32_to_f16_bits;
use inerf_mlp::{AdamState, AdamStateSnapshot, Mlp, ParamStore, Precision};
use inerf_scenes::Dataset;
use inerf_snapshot::codec::{
    put_f32, put_f32_slice, put_u16_slice, put_u32, put_u32_slice, put_u64, put_u8, Reader,
};
use inerf_snapshot::{load_latest, write_snapshot, Snapshot, SnapshotError, SnapshotIo, StdIo};
use rand::rngs::SmallRng;

/// Section tags of the trainer snapshot (all ≤ 8 bytes).
mod tag {
    pub const CONFIG: &str = "config";
    pub const TRAINER: &str = "trainer";
    pub const OCCUPANC: &str = "occ";
    pub const GRID: &str = "grid";
    pub const MLP_DENSITY: &str = "mlpd";
    pub const MLP_COLOR: &str = "mlpc";
    pub const ADAM_GRID: &str = "adamgrid";
    pub const ADAM_DENSITY: &str = "adamden";
    pub const ADAM_COLOR: &str = "adamcol";
}

/// Sanity cap on a restored occupancy resolution: `res³` bits must not
/// overflow, and anything past this is corrupt data, not a real grid.
const MAX_OCC_RESOLUTION: u32 = 1 << 12;

// ---------------------------------------------------------------------
// Enum tags: explicit, stable bytes — `as u8` on `#[derive]`d enums
// would silently renumber if a variant were ever inserted.

fn engine_tag(e: Engine) -> u8 {
    match e {
        Engine::Scalar => 0,
        Engine::Batched => 1,
    }
}

fn engine_from(t: u8) -> Result<Engine, SnapshotError> {
    match t {
        0 => Ok(Engine::Scalar),
        1 => Ok(Engine::Batched),
        _ => Err(SnapshotError::Corrupt(format!("unknown engine tag {t}"))),
    }
}

fn order_tag(o: StreamingOrder) -> u8 {
    match o {
        StreamingOrder::RayFirst => 0,
        StreamingOrder::Random => 1,
    }
}

fn order_from(t: u8) -> Result<StreamingOrder, SnapshotError> {
    match t {
        0 => Ok(StreamingOrder::RayFirst),
        1 => Ok(StreamingOrder::Random),
        _ => Err(SnapshotError::Corrupt(format!(
            "unknown streaming-order tag {t}"
        ))),
    }
}

fn precision_tag(p: Precision) -> u8 {
    match p {
        Precision::F32 => 0,
        Precision::Fp16 => 1,
    }
}

fn precision_from(t: u8) -> Result<Precision, SnapshotError> {
    match t {
        0 => Ok(Precision::F32),
        1 => Ok(Precision::Fp16),
        _ => Err(SnapshotError::Corrupt(format!("unknown precision tag {t}"))),
    }
}

fn opt_tag(o: OptPath) -> u8 {
    match o {
        OptPath::Sparse => 0,
        OptPath::Dense => 1,
    }
}

fn opt_from(t: u8) -> Result<OptPath, SnapshotError> {
    match t {
        0 => Ok(OptPath::Sparse),
        1 => Ok(OptPath::Dense),
        _ => Err(SnapshotError::Corrupt(format!(
            "unknown optimizer-path tag {t}"
        ))),
    }
}

fn hash_tag(h: HashFunction) -> u8 {
    match h {
        HashFunction::Original => 0,
        HashFunction::Morton => 1,
    }
}

fn hash_from(t: u8) -> Result<HashFunction, SnapshotError> {
    match t {
        0 => Ok(HashFunction::Original),
        1 => Ok(HashFunction::Morton),
        _ => Err(SnapshotError::Corrupt(format!(
            "unknown hash-function tag {t}"
        ))),
    }
}

// ---------------------------------------------------------------------
// Config fingerprint.

/// Canonical bytes of the full (train, model) configuration pair.
pub fn encode_configs(train: &TrainConfig, model: &ModelConfig) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, train.rays_per_batch as u64);
    put_u64(&mut out, train.samples_per_ray as u64);
    put_u8(&mut out, order_tag(train.order));
    put_u64(&mut out, train.eval_samples_per_ray as u64);
    put_u8(&mut out, engine_tag(train.engine));
    put_u8(&mut out, precision_tag(train.precision));
    put_u8(&mut out, opt_tag(train.opt));
    put_u32(&mut out, model.grid.levels);
    put_u32(&mut out, model.grid.table_size_log2);
    put_u32(&mut out, model.grid.features);
    put_u32(&mut out, model.grid.n_min);
    put_u32(&mut out, model.grid.n_max);
    put_u8(&mut out, hash_tag(model.grid.hash));
    put_u64(&mut out, model.density_hidden as u64);
    put_u64(&mut out, model.density_out as u64);
    put_u64(&mut out, model.color_hidden as u64);
    out
}

/// Decodes [`encode_configs`] output.
pub fn decode_configs(bytes: &[u8]) -> Result<(TrainConfig, ModelConfig), SnapshotError> {
    let mut r = Reader::new(bytes);
    let train = TrainConfig {
        rays_per_batch: r.u64()? as usize,
        samples_per_ray: r.u64()? as usize,
        order: order_from(r.u8()?)?,
        eval_samples_per_ray: r.u64()? as usize,
        engine: engine_from(r.u8()?)?,
        precision: precision_from(r.u8()?)?,
        opt: opt_from(r.u8()?)?,
    };
    let model = ModelConfig {
        grid: HashGridConfig {
            levels: r.u32()?,
            table_size_log2: r.u32()?,
            features: r.u32()?,
            n_min: r.u32()?,
            n_max: r.u32()?,
            hash: hash_from(r.u8()?)?,
        },
        density_hidden: r.u64()? as usize,
        density_out: r.u64()? as usize,
        color_hidden: r.u64()? as usize,
    };
    r.finish()?;
    Ok((train, model))
}

// ---------------------------------------------------------------------
// ParamStore payloads.

/// Encodes a [`ParamStore`]: precision tag, f32 master bits, and (at
/// fp16) the half-precision working copy. The fp16 payload is exact —
/// working values are fp16-representable, so `f32→f16 bits` loses
/// nothing — and doubles as an integrity cross-check on load.
pub fn encode_param_store(out: &mut Vec<u8>, store: &ParamStore) {
    put_u8(out, precision_tag(store.precision()));
    put_f32_slice(out, store.master());
    if store.precision() == Precision::Fp16 {
        let half: Vec<u16> = store.values().iter().map(|&v| f32_to_f16_bits(v)).collect();
        put_u16_slice(out, &half);
    }
}

/// Decodes [`encode_param_store`] output from `r`, validating the
/// precision, the length, and (at fp16) that the stored working copy
/// matches re-quantization of the masters bit for bit.
pub fn decode_param_store(
    r: &mut Reader<'_>,
    expected_len: usize,
    expected_precision: Precision,
) -> Result<ParamStore, SnapshotError> {
    let precision = precision_from(r.u8()?)?;
    if precision != expected_precision {
        return Err(SnapshotError::Corrupt(format!(
            "parameter store precision {} does not match configured {}",
            precision.label(),
            expected_precision.label()
        )));
    }
    let master = r.f32_vec()?;
    if master.len() != expected_len {
        return Err(SnapshotError::Corrupt(format!(
            "parameter store length {} does not match model layout {expected_len}",
            master.len()
        )));
    }
    let store = ParamStore::new(precision, master);
    if precision == Precision::Fp16 {
        let half = r.u16_vec()?;
        let recomputed: Vec<u16> = store.values().iter().map(|&v| f32_to_f16_bits(v)).collect();
        if half != recomputed {
            return Err(SnapshotError::Corrupt(
                "fp16 working copy does not match re-quantized masters".to_string(),
            ));
        }
    }
    Ok(store)
}

fn encode_mlp(mlp: &Mlp) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, mlp.layers().len() as u32);
    for layer in mlp.layers() {
        encode_param_store(&mut out, layer.weights());
        encode_param_store(&mut out, layer.bias());
    }
    out
}

fn restore_mlp(mlp: &mut Mlp, bytes: &[u8], precision: Precision) -> Result<(), SnapshotError> {
    let mut r = Reader::new(bytes);
    let count = r.u32()? as usize;
    if count != mlp.layers().len() {
        return Err(SnapshotError::Corrupt(format!(
            "MLP layer count {count} does not match model layout {}",
            mlp.layers().len()
        )));
    }
    for layer in mlp.layers_mut() {
        let w_len = layer.weights().len();
        let b_len = layer.bias().len();
        *layer.weights_mut() = decode_param_store(&mut r, w_len, precision)?;
        *layer.bias_mut() = decode_param_store(&mut r, b_len, precision)?;
    }
    r.finish()
}

// ---------------------------------------------------------------------
// Adam payloads.

fn encode_adam(adam: &AdamState) -> Vec<u8> {
    let snap = adam.to_snapshot();
    let mut out = Vec::new();
    put_f32(&mut out, snap.learning_rate);
    put_f32(&mut out, snap.beta1);
    put_f32(&mut out, snap.beta2);
    put_f32(&mut out, snap.epsilon);
    put_u64(&mut out, snap.t);
    put_u8(&mut out, u8::from(snap.lazy));
    put_u32_slice(&mut out, &snap.m_bits);
    put_u32_slice(&mut out, &snap.v_bits);
    put_u32_slice(&mut out, &snap.step_stamps);
    out
}

fn decode_adam(bytes: &[u8], expected_n: usize) -> Result<AdamState, SnapshotError> {
    let mut r = Reader::new(bytes);
    let learning_rate = r.f32()?;
    let beta1 = r.f32()?;
    let beta2 = r.f32()?;
    let epsilon = r.f32()?;
    let t = r.u64()?;
    let lazy = match r.u8()? {
        0 => false,
        1 => true,
        other => {
            return Err(SnapshotError::Corrupt(format!(
                "unknown adam mode tag {other}"
            )))
        }
    };
    let m_bits = r.u32_vec()?;
    let v_bits = r.u32_vec()?;
    let step_stamps = r.u32_vec()?;
    r.finish()?;
    if m_bits.len() != expected_n || v_bits.len() != expected_n || step_stamps.len() != expected_n {
        return Err(SnapshotError::Corrupt(format!(
            "adam record count {}/{}/{} does not match model layout {expected_n}",
            m_bits.len(),
            v_bits.len(),
            step_stamps.len()
        )));
    }
    Ok(AdamState::from_snapshot(&AdamStateSnapshot {
        m_bits,
        v_bits,
        step_stamps,
        t,
        lazy,
        learning_rate,
        beta1,
        beta2,
        epsilon,
    }))
}

// ---------------------------------------------------------------------
// Trainer integration.

impl Trainer<IngpModel> {
    /// Captures the complete training state as an in-memory snapshot.
    ///
    /// Flushes lazily deferred optimizer updates first (trajectory-
    /// neutral — the same sync every render/eval already performs), so
    /// the captured state needs no touch-stamp bookkeeping: after the
    /// sync every Adam stamp equals the global step.
    pub fn capture_snapshot(&mut self) -> Snapshot {
        self.model.sync_parameters();
        let mut snap = Snapshot::new();
        snap.push(
            tag::CONFIG,
            encode_configs(&self.config, self.model.config()),
        );

        let mut trainer_bytes = Vec::new();
        put_u64(&mut trainer_bytes, self.steps);
        put_u64(&mut trainer_bytes, self.points_queried);
        for word in self.rng.state() {
            put_u64(&mut trainer_bytes, word);
        }
        snap.push(tag::TRAINER, trainer_bytes);

        let mut occ_bytes = Vec::new();
        match &self.occupancy {
            None => put_u8(&mut occ_bytes, 0),
            Some(occ) => {
                put_u8(&mut occ_bytes, 1);
                put_u32(&mut occ_bytes, occ.grid.resolution());
                put_f32(&mut occ_bytes, occ.threshold);
                put_u64(&mut occ_bytes, occ.refresh_every as u64);
                put_u64(&mut occ_bytes, occ.iteration as u64);
                let mut words = Vec::new();
                words.extend_from_slice(occ.grid.words());
                inerf_snapshot::codec::put_u64_slice(&mut occ_bytes, &words);
            }
        }
        snap.push(tag::OCCUPANC, occ_bytes);

        let mut grid_bytes = Vec::new();
        encode_param_store(&mut grid_bytes, self.model.grid().parameter_store());
        snap.push(tag::GRID, grid_bytes);
        snap.push(tag::MLP_DENSITY, encode_mlp(self.model.density_mlp()));
        snap.push(tag::MLP_COLOR, encode_mlp(self.model.color_mlp()));

        let [grid_adam, density_adam, color_adam] = self.model.adam_states();
        snap.push(tag::ADAM_GRID, encode_adam(grid_adam));
        snap.push(tag::ADAM_DENSITY, encode_adam(density_adam));
        snap.push(tag::ADAM_COLOR, encode_adam(color_adam));
        snap
    }

    /// Writes a checkpoint of the current state through `io` using the
    /// atomic protocol, pruning to `keep_last` snapshots. Returns the
    /// step the checkpoint is named after.
    pub fn save_checkpoint_to(
        &mut self,
        io: &mut dyn SnapshotIo,
        keep_last: usize,
    ) -> Result<u64, SnapshotError> {
        let snap = self.capture_snapshot();
        write_snapshot(io, self.steps, &snap, keep_last)?;
        Ok(self.steps)
    }

    /// Writes a checkpoint under the directory configured with
    /// [`Trainer::checkpoint_every_n`].
    ///
    /// # Panics
    ///
    /// Panics if no checkpoint policy was configured.
    pub fn save_checkpoint(&mut self) -> Result<u64, SnapshotError> {
        let Some(policy) = self.checkpoint.clone() else {
            panic!("save_checkpoint requires checkpoint_every_n to be configured first");
        };
        let mut io = StdIo::new(&policy.dir);
        self.save_checkpoint_to(&mut io, policy.keep_last)
    }

    /// [`Trainer::train`] with periodic crash-safe checkpoints, written
    /// every `every_n` completed iterations per the policy configured
    /// with [`Trainer::checkpoint_every_n`].
    ///
    /// # Panics
    ///
    /// Panics if no checkpoint policy was configured.
    pub fn train_checkpointed(
        &mut self,
        dataset: &Dataset,
        iterations: usize,
    ) -> Result<TrainReport, SnapshotError> {
        let Some(policy) = self.checkpoint.clone() else {
            panic!("train_checkpointed requires checkpoint_every_n to be configured first");
        };
        let mut io = StdIo::new(&policy.dir);
        let mut losses = Vec::with_capacity(iterations);
        for _ in 0..iterations {
            losses.push(self.train_step(dataset));
            if self.steps.is_multiple_of(policy.every_n as u64) {
                self.save_checkpoint_to(&mut io, policy.keep_last)?;
            }
        }
        Ok(TrainReport {
            iterations,
            first_loss: losses.first().copied().unwrap_or(0.0),
            last_loss: losses.last().copied().unwrap_or(0.0),
            losses,
        })
    }

    /// Resumes from the newest loadable checkpoint under `dir`.
    ///
    /// `config` must match the snapshot's stored configuration exactly;
    /// a mismatch is a typed [`SnapshotError::ConfigMismatch`], because
    /// continuing under different hyper-parameters would silently
    /// diverge from the trajectory the checkpoint promises. The thread
    /// count is *not* part of the fingerprint — chain
    /// [`Trainer::with_threads`] freely after resuming.
    pub fn resume_from(
        dir: impl Into<std::path::PathBuf>,
        config: TrainConfig,
    ) -> Result<Self, SnapshotError> {
        Self::resume_from_io(&StdIo::new(dir.into()), config)
    }

    /// [`Trainer::resume_from`] over any [`SnapshotIo`] backend.
    pub fn resume_from_io(io: &dyn SnapshotIo, config: TrainConfig) -> Result<Self, SnapshotError> {
        let (_, snap) = load_latest(io)?;
        Self::restore_snapshot(&snap, config)
    }

    /// Rebuilds a trainer from a decoded snapshot, bit-exactly.
    pub fn restore_snapshot(snap: &Snapshot, config: TrainConfig) -> Result<Self, SnapshotError> {
        let (stored_train, model_config) = decode_configs(snap.section(tag::CONFIG)?)?;
        if stored_train != config {
            return Err(SnapshotError::ConfigMismatch(format!(
                "snapshot was trained with {stored_train:?}, resume requested {config:?}"
            )));
        }

        // Rebuild the model skeleton (layout, scratch, touch tracking,
        // lazy mode) from the stored config, then overwrite every
        // parameter and optimizer record with the snapshot bits.
        let mut model = IngpModel::with_options(model_config, 0, config.precision, config.opt);

        let grid_len = model.grid().parameter_store().len();
        let mut grid_reader = Reader::new(snap.section(tag::GRID)?);
        let grid_store = decode_param_store(&mut grid_reader, grid_len, config.precision)?;
        grid_reader.finish()?;
        *model.grid_mut().parameter_store_mut() = grid_store;

        {
            let (density, color) = model.mlps_mut();
            restore_mlp(density, snap.section(tag::MLP_DENSITY)?, config.precision)?;
            restore_mlp(color, snap.section(tag::MLP_COLOR)?, config.precision)?;
        }

        let expected_ns = [
            grid_len,
            model.density_mlp().parameter_count(),
            model.color_mlp().parameter_count(),
        ];
        let sections = [tag::ADAM_GRID, tag::ADAM_DENSITY, tag::ADAM_COLOR];
        let adams = model.adam_states_mut();
        for ((adam, section), expected_n) in adams.into_iter().zip(sections).zip(expected_ns) {
            *adam = decode_adam(snap.section(section)?, expected_n)?;
        }

        let mut r = Reader::new(snap.section(tag::TRAINER)?);
        let steps = r.u64()?;
        let points_queried = r.u64()?;
        let rng_state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        r.finish()?;

        let mut occ_reader = Reader::new(snap.section(tag::OCCUPANC)?);
        let occupancy = match occ_reader.u8()? {
            0 => None,
            1 => {
                let resolution = occ_reader.u32()?;
                if resolution == 0 || resolution > MAX_OCC_RESOLUTION {
                    return Err(SnapshotError::Corrupt(format!(
                        "implausible occupancy resolution {resolution}"
                    )));
                }
                let threshold = occ_reader.f32()?;
                let refresh_every = occ_reader.u64()? as usize;
                let iteration = occ_reader.u64()? as usize;
                let words = occ_reader.u64_vec()?;
                let expected_words = (resolution as usize).pow(3).div_ceil(64);
                if words.len() != expected_words {
                    return Err(SnapshotError::Corrupt(format!(
                        "occupancy word count {} does not match resolution {resolution}",
                        words.len()
                    )));
                }
                Some(OccupancyState {
                    grid: OccupancyGrid::from_words(resolution, words),
                    threshold,
                    refresh_every: refresh_every.max(1),
                    iteration,
                })
            }
            other => {
                return Err(SnapshotError::Corrupt(format!(
                    "unknown occupancy flag {other}"
                )))
            }
        };
        occ_reader.finish()?;

        let mut trainer = Trainer::new(model, config, 0);
        trainer.rng = SmallRng::from_state(rng_state);
        trainer.steps = steps;
        trainer.points_queried = points_queried;
        trainer.occupancy = occupancy;
        Ok(trainer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_fingerprint_round_trips() {
        let train = TrainConfig::tiny()
            .with_engine(Engine::Batched)
            .with_precision(Precision::Fp16)
            .with_opt(OptPath::Dense);
        let model = ModelConfig::tiny();
        let bytes = encode_configs(&train, &model);
        let (t2, m2) = decode_configs(&bytes).unwrap();
        assert_eq!(t2, train);
        assert_eq!(m2, model);
    }

    #[test]
    fn param_store_decode_rejects_layout_mismatches() {
        let store = ParamStore::new(Precision::Fp16, vec![0.1, -0.2, 0.3]);
        let mut bytes = Vec::new();
        encode_param_store(&mut bytes, &store);
        // Wrong expected length.
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            decode_param_store(&mut r, 4, Precision::Fp16),
            Err(SnapshotError::Corrupt(_))
        ));
        // Wrong expected precision.
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            decode_param_store(&mut r, 3, Precision::F32),
            Err(SnapshotError::Corrupt(_))
        ));
        // Matching expectations round-trip bit-exactly.
        let mut r = Reader::new(&bytes);
        let restored = decode_param_store(&mut r, 3, Precision::Fp16).unwrap();
        r.finish().unwrap();
        assert_eq!(restored, store);
    }

    #[test]
    fn adam_decode_rejects_wrong_counts_and_mode() {
        let adam = AdamState::new(4, 0.01);
        let bytes = encode_adam(&adam);
        assert!(matches!(
            decode_adam(&bytes, 5),
            Err(SnapshotError::Corrupt(_))
        ));
        let restored = decode_adam(&bytes, 4).unwrap();
        assert_eq!(restored, adam);
        // A mode byte that is neither 0 nor 1 is corruption.
        let mut bad = bytes.clone();
        bad[24] = 7; // lr,b1,b2,eps (16) + t (8) → mode byte at offset 24
        assert!(matches!(
            decode_adam(&bad, 4),
            Err(SnapshotError::Corrupt(_))
        ));
    }
}
