//! The iNGP training workload model (paper Tab. II and the op counts the
//! hardware cost models consume).
//!
//! All quantities derive from the architecture configuration and the batch
//! size. The storage width of table entries, features and activations is a
//! [`Precision`] parameter (input coordinates stay FP32); the argument-free
//! functions keep the paper's Tab. II convention — FP16 (2 B) storage —
//! while the `*_at` variants model the same workload at f32 width.

use crate::model::ModelConfig;
use inerf_mlp::Precision;
use serde::{Deserialize, Serialize};

/// The bottleneck pipeline steps the paper analyzes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Step {
    /// Hash-table encode: hashing, lookup, interpolation (Steps 1–3 of Fig. 3).
    Ht,
    /// Density MLP forward.
    MlpD,
    /// Color MLP forward.
    MlpC,
    /// Color MLP backward.
    MlpCB,
    /// Density MLP backward.
    MlpDB,
    /// Hash-table backward (embedding gradient scatter).
    HtB,
}

impl Step {
    /// All steps in forward-then-backward pipeline order.
    pub const ALL: [Step; 6] = [
        Step::Ht,
        Step::MlpD,
        Step::MlpC,
        Step::MlpCB,
        Step::MlpDB,
        Step::HtB,
    ];

    /// The paper's label for this step.
    pub fn label(&self) -> &'static str {
        match self {
            Step::Ht => "HT",
            Step::MlpD => "MLPd",
            Step::MlpC => "MLPc",
            Step::MlpCB => "MLPc_b",
            Step::MlpDB => "MLPd_b",
            Step::HtB => "HT_b",
        }
    }
}

/// Byte sizes of one step's operands for a whole batch (one Tab. II row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepSizes {
    /// Parameters read (and, for backward steps, written).
    pub param_bytes: u64,
    /// Input operand bytes.
    pub input_bytes: u64,
    /// Output operand bytes.
    pub output_bytes: u64,
    /// Peak intermediate data (level-by-level / layer-by-layer maximum).
    pub intermediate_bytes: u64,
}

const FP32: u64 = 4;

/// The paper's Tab. II storage convention: FP16 entries and activations.
const TAB2_PRECISION: Precision = Precision::Fp16;

/// Bytes of the hash table stored at `precision` (dense coarse levels
/// stored compactly). Halves going from f32 to fp16.
pub fn hash_table_bytes_at(cfg: &ModelConfig, precision: Precision) -> u64 {
    let sb = precision.bytes_per_param() as u64;
    cfg.grid
        .build_levels()
        .iter()
        .map(|l| {
            let entries = (l.dense_vertex_count()).min(cfg.grid.table_size() as u64);
            entries * cfg.grid.features as u64 * sb
        })
        .sum()
}

/// Bytes of the FP16 hash table — the paper's Tab. II convention.
pub fn hash_table_bytes(cfg: &ModelConfig) -> u64 {
    hash_table_bytes_at(cfg, TAB2_PRECISION)
}

/// Bytes of the two MLPs' weights stored at `precision`.
pub fn mlp_param_bytes_at(cfg: &ModelConfig, precision: Precision) -> u64 {
    let feat = cfg.grid.feature_dim() as u64;
    let dh = cfg.density_hidden as u64;
    let dout = cfg.density_out as u64;
    let ch = cfg.color_hidden as u64;
    let cin = (dout - 1) + 9;
    let density = feat * dh + dh + dh * dout + dout;
    let color = cin * ch + ch + ch * ch + ch + ch * 3 + 3;
    (density + color) * precision.bytes_per_param() as u64
}

/// Bytes of the two MLPs' weights (FP16, the Tab. II convention).
pub fn mlp_param_bytes(cfg: &ModelConfig) -> u64 {
    mlp_param_bytes_at(cfg, TAB2_PRECISION)
}

/// Computes one Tab. II row for a batch of `points` sampled points, with
/// parameters and activations stored at `precision`.
pub fn step_sizes_at(
    cfg: &ModelConfig,
    step: Step,
    points: u64,
    precision: Precision,
) -> StepSizes {
    let sb = precision.bytes_per_param() as u64;
    let feat = cfg.grid.feature_dim() as u64;
    let encode_bytes = points * feat * sb; // HT output = MLP input
    let rgb_bytes = points * 3 * sb;
    let hidden_bytes = points * cfg.color_hidden.max(cfg.density_hidden) as u64 * sb;
    match step {
        Step::Ht => StepSizes {
            param_bytes: hash_table_bytes_at(cfg, precision),
            input_bytes: points * 3 * FP32, // 3D coordinates
            output_bytes: encode_bytes,
            intermediate_bytes: 0,
        },
        Step::MlpD | Step::MlpC => StepSizes {
            param_bytes: mlp_param_bytes_at(cfg, precision),
            input_bytes: encode_bytes,
            output_bytes: rgb_bytes,
            intermediate_bytes: hidden_bytes,
        },
        Step::MlpCB | Step::MlpDB => StepSizes {
            param_bytes: mlp_param_bytes_at(cfg, precision),
            input_bytes: rgb_bytes,
            output_bytes: encode_bytes,
            intermediate_bytes: hidden_bytes,
        },
        Step::HtB => StepSizes {
            param_bytes: hash_table_bytes_at(cfg, precision),
            input_bytes: encode_bytes,
            output_bytes: 0,
            intermediate_bytes: 0,
        },
    }
}

/// Computes one Tab. II row at the paper's FP16 storage convention.
pub fn step_sizes(cfg: &ModelConfig, step: Step, points: u64) -> StepSizes {
    step_sizes_at(cfg, step, points, TAB2_PRECISION)
}

/// Aggregated "MLP" row of Tab. II (MLPd and MLPc applied sequentially)
/// at `precision`.
pub fn mlp_combined_sizes_at(cfg: &ModelConfig, points: u64, precision: Precision) -> StepSizes {
    let d = step_sizes_at(cfg, Step::MlpD, points, precision);
    StepSizes {
        param_bytes: mlp_param_bytes_at(cfg, precision),
        input_bytes: d.input_bytes,
        output_bytes: d.output_bytes,
        intermediate_bytes: d.intermediate_bytes,
    }
}

/// Aggregated "MLP" row of Tab. II at the FP16 convention.
pub fn mlp_combined_sizes(cfg: &ModelConfig, points: u64) -> StepSizes {
    mlp_combined_sizes_at(cfg, points, TAB2_PRECISION)
}

/// Per-point operation counts of one step, used by the GPU and NMP cost
/// models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepOps {
    /// Floating-point operations (MACs count as 2).
    pub fp_ops: u64,
    /// Integer ALU operations (index calculation via the hash mapping).
    pub int_ops: u64,
    /// Ideal DRAM traffic in bytes (before access-granularity amplification).
    pub dram_bytes: u64,
}

/// Per-point op counts for `step`, with storage traffic at `precision`
/// (the op counts themselves are precision-independent — computation runs
/// in FP32/INT32 either way).
pub fn step_ops_at(cfg: &ModelConfig, step: Step, precision: Precision) -> StepOps {
    let sb = precision.bytes_per_param() as u64;
    let levels = cfg.grid.levels as u64;
    let feats = cfg.grid.features as u64;
    let feat_dim = cfg.grid.feature_dim() as u64;
    let dh = cfg.density_hidden as u64;
    let dout = cfg.density_out as u64;
    let ch = cfg.color_hidden as u64;
    let cin = (dout - 1) + 9;
    let hash_int_ops = inerf_encoding::hash::index_int_ops(cfg.grid.hash) as u64;
    match step {
        Step::Ht => StepOps {
            // Trilinear interpolation: 8 corners × F features × MAC, plus
            // weight computation (~3 muls per corner).
            fp_ops: levels * (8 * feats * 2 + 8 * 3),
            // 8 vertex hashes per level.
            int_ops: levels * 8 * hash_int_ops,
            // Read 8 entries per level + write the concatenated features.
            dram_bytes: levels * 8 * feats * sb + feat_dim * sb,
        },
        Step::MlpD => StepOps {
            fp_ops: 2 * (feat_dim * dh + dh * dout),
            int_ops: 0,
            dram_bytes: feat_dim * sb + dout * sb,
        },
        Step::MlpC => StepOps {
            fp_ops: 2 * (cin * ch + ch * ch + ch * 3),
            int_ops: 0,
            dram_bytes: cin * sb + 3 * sb,
        },
        Step::MlpCB => StepOps {
            fp_ops: 4 * (cin * ch + ch * ch + ch * 3),
            int_ops: 0,
            dram_bytes: (cin + 3) * sb + ch * sb,
        },
        Step::MlpDB => StepOps {
            fp_ops: 4 * (feat_dim * dh + dh * dout),
            int_ops: 0,
            dram_bytes: (feat_dim + dout) * sb + dh * sb,
        },
        Step::HtB => StepOps {
            // Gradient scatter: read-modify-write 8 entries per level.
            fp_ops: levels * 8 * feats * 2,
            int_ops: levels * 8 * hash_int_ops,
            dram_bytes: levels * 8 * feats * sb * 2 + feat_dim * sb,
        },
    }
}

/// Per-point op counts for `step` at the paper's FP16 storage convention.
pub fn step_ops(cfg: &ModelConfig, step: Step) -> StepOps {
    step_ops_at(cfg, step, TAB2_PRECISION)
}

const MB: f64 = 1024.0 * 1024.0;

/// Formats a byte count in MB for experiment tables.
pub fn to_mb(bytes: u64) -> f64 {
    bytes as f64 / MB
}

#[cfg(test)]
mod tests {
    use super::*;
    use inerf_encoding::HashFunction;

    const PAPER_BATCH: u64 = 256 * 1024;

    fn paper_cfg() -> ModelConfig {
        ModelConfig::paper(HashFunction::Morton)
    }

    #[test]
    fn tab2_ht_row() {
        let s = step_sizes(&paper_cfg(), Step::Ht, PAPER_BATCH);
        // Paper: 25 MB params, 3 MB input, 16 MB output, 0 intermediate.
        assert!(
            (20.0..30.0).contains(&to_mb(s.param_bytes)),
            "param {:.1}",
            to_mb(s.param_bytes)
        );
        assert!(
            (to_mb(s.input_bytes) - 3.0).abs() < 0.1,
            "input {:.2}",
            to_mb(s.input_bytes)
        );
        assert!(
            (to_mb(s.output_bytes) - 16.0).abs() < 0.1,
            "output {:.2}",
            to_mb(s.output_bytes)
        );
        assert_eq!(s.intermediate_bytes, 0);
    }

    #[test]
    fn tab2_mlp_row() {
        let s = mlp_combined_sizes(&paper_cfg(), PAPER_BATCH);
        // Paper: 0.014 MB params, 16 MB input, 1.5 MB output, 32 MB intermediate.
        assert!(
            (0.008..0.03).contains(&to_mb(s.param_bytes)),
            "param {:.4} MB",
            to_mb(s.param_bytes)
        );
        assert!((to_mb(s.input_bytes) - 16.0).abs() < 0.1);
        assert!((to_mb(s.output_bytes) - 1.5).abs() < 0.1);
        assert!((to_mb(s.intermediate_bytes) - 32.0).abs() < 0.1);
    }

    #[test]
    fn tab2_htb_row() {
        let s = step_sizes(&paper_cfg(), Step::HtB, PAPER_BATCH);
        assert!((20.0..30.0).contains(&to_mb(s.param_bytes)));
        assert!((to_mb(s.input_bytes) - 16.0).abs() < 0.1);
        assert_eq!(s.output_bytes, 0);
    }

    #[test]
    fn backward_rows_mirror_forward() {
        let f = step_sizes(&paper_cfg(), Step::MlpD, PAPER_BATCH);
        let b = step_sizes(&paper_cfg(), Step::MlpDB, PAPER_BATCH);
        assert_eq!(f.input_bytes, b.output_bytes);
        assert_eq!(f.output_bytes, b.input_bytes);
    }

    #[test]
    fn level_is_2mb_as_paper_states() {
        // Sec. II-B: "each individual level of the hash table is 2 MB".
        let cfg = paper_cfg();
        assert_eq!(cfg.grid.level_bytes(4), 2 * 1024 * 1024);
    }

    #[test]
    fn ht_is_memory_heavy_mlp_is_compute_heavy() {
        // The co-design premise: HT moves many bytes per FLOP, the MLPs the
        // reverse. Ratio of bytes to flops must differ by an order of
        // magnitude.
        let cfg = paper_cfg();
        let ht = step_ops(&cfg, Step::Ht);
        let mlp = step_ops(&cfg, Step::MlpD);
        let ht_intensity = ht.fp_ops as f64 / ht.dram_bytes as f64;
        let mlp_intensity = mlp.fp_ops as f64 / mlp.dram_bytes as f64;
        assert!(
            mlp_intensity > 10.0 * ht_intensity,
            "MLP intensity {mlp_intensity:.1} vs HT {ht_intensity:.1}"
        );
    }

    #[test]
    fn ht_dominates_int_ops() {
        // Observation 3 of Sec. II-B: index calculation dominates INT32 use.
        let cfg = paper_cfg();
        let total_int: u64 = Step::ALL.iter().map(|&s| step_ops(&cfg, s).int_ops).sum();
        let ht_int = step_ops(&cfg, Step::Ht).int_ops + step_ops(&cfg, Step::HtB).int_ops;
        assert_eq!(total_int, ht_int, "only HT steps use INT ops in this model");
        assert!(ht_int > 0);
    }

    #[test]
    fn step_labels_unique() {
        let mut labels: Vec<&str> = Step::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 6);
    }
}
