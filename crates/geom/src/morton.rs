//! 3D Morton (Z-order) codes.
//!
//! The paper's locality-sensitive hash mapping function (Eq. 2) is
//!
//! ```text
//! h(x) = ( f(x0) + (f(x1) << 1) + (f(x2) << 2) )  mod  T
//! ```
//!
//! where `f` is the "separate-one-by-two" bit-spreading function that inserts
//! two zero bits between every pair of adjacent bits (e.g. `f(0b1011) =
//! 0b1000001001`). The sum of the three spread-and-shifted coordinates is
//! exactly the 3D Morton code of the vertex, so neighbouring lattice vertices
//! receive nearby codes — the property the NMP mapping exploits.

/// Spreads the low 21 bits of `v` so two zero bits separate each input bit.
///
/// This is the paper's `f(x)` ("separate one by two"). Only the low 21 bits
/// participate, which is sufficient for grid resolutions up to 2^21 per axis.
///
/// # Example
///
/// ```
/// use inerf_geom::morton::spread_bits;
/// assert_eq!(spread_bits(0b1011), 0b1_000_001_001);
/// ```
#[inline]
pub const fn spread_bits(v: u32) -> u64 {
    // Classic magic-number bit interleave for 21-bit inputs.
    let mut x = (v as u64) & 0x1f_ffff;
    x = (x | (x << 32)) & 0x1f00000000ffff;
    x = (x | (x << 16)) & 0x1f0000ff0000ff;
    x = (x | (x << 8)) & 0x100f00f00f00f00f;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3;
    x = (x | (x << 2)) & 0x1249249249249249;
    x
}

/// Inverse of [`spread_bits`]: gathers every third bit back together.
#[inline]
pub const fn compact_bits(v: u64) -> u32 {
    let mut x = v & 0x1249249249249249;
    x = (x | (x >> 2)) & 0x10c30c30c30c30c3;
    x = (x | (x >> 4)) & 0x100f00f00f00f00f;
    x = (x | (x >> 8)) & 0x1f0000ff0000ff;
    x = (x | (x >> 16)) & 0x1f00000000ffff;
    x = (x | (x >> 32)) & 0x1f_ffff;
    x as u32
}

/// Encodes `(x, y, z)` lattice coordinates into a 3D Morton code.
///
/// Bit `3k` of the result is bit `k` of `x`, bit `3k+1` is bit `k` of `y`,
/// and bit `3k+2` is bit `k` of `z`, matching the paper's
/// `f(x0) + (f(x1) << 1) + (f(x2) << 2)`.
///
/// # Example
///
/// ```
/// use inerf_geom::morton::{morton_encode, morton_decode};
/// let code = morton_encode(3, 5, 9);
/// assert_eq!(morton_decode(code), (3, 5, 9));
/// ```
#[inline]
pub const fn morton_encode(x: u32, y: u32, z: u32) -> u64 {
    spread_bits(x) | (spread_bits(y) << 1) | (spread_bits(z) << 2)
}

/// Decodes a 3D Morton code back into `(x, y, z)`.
#[inline]
pub const fn morton_decode(code: u64) -> (u32, u32, u32) {
    (
        compact_bits(code),
        compact_bits(code >> 1),
        compact_bits(code >> 2),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_spread() {
        // Paper: f(1011_2) = 1000001001_2.
        assert_eq!(spread_bits(0b1011), 0b1000001001);
    }

    #[test]
    fn spread_zero_and_one() {
        assert_eq!(spread_bits(0), 0);
        assert_eq!(spread_bits(1), 1);
        assert_eq!(spread_bits(0b11), 0b1001);
    }

    #[test]
    fn encode_axis_unit_steps() {
        assert_eq!(morton_encode(1, 0, 0), 0b001);
        assert_eq!(morton_encode(0, 1, 0), 0b010);
        assert_eq!(morton_encode(0, 0, 1), 0b100);
        assert_eq!(morton_encode(1, 1, 1), 0b111);
    }

    #[test]
    fn neighbours_have_small_code_distance_in_aligned_octants() {
        // Within an aligned 2x2x2 block, all 8 vertices map to 8 consecutive codes.
        let base = morton_encode(4, 2, 6); // all-even corner
        let mut codes: Vec<u64> = Vec::new();
        for dz in 0..2 {
            for dy in 0..2 {
                for dx in 0..2 {
                    codes.push(morton_encode(4 + dx, 2 + dy, 6 + dz));
                }
            }
        }
        codes.sort_unstable();
        for (i, c) in codes.iter().enumerate() {
            assert_eq!(*c, base + i as u64);
        }
    }

    #[test]
    fn spread_compact_roundtrip_exhaustive_21_bits() {
        // The magic-mask chain is easy to get subtly wrong (a transposed
        // mask passes most spot checks); verify the whole 21-bit domain.
        const LANE_MASK: u64 = 0x1249_2492_4924_9249; // bits 0, 3, 6, ...
        for v in 0..(1u32 << 21) {
            let s = spread_bits(v);
            assert_eq!(s & !LANE_MASK, 0, "v={v:#x}: spread bits left lane 0");
            assert_eq!(compact_bits(s), v, "v={v:#x}: round-trip");
        }
        // Inputs above 21 bits are explicitly truncated, not smeared.
        assert_eq!(spread_bits(1 << 21), 0);
        assert_eq!(spread_bits(u32::MAX), spread_bits(0x1f_ffff));
    }

    proptest! {
        #[test]
        fn spread_compact_roundtrip(v in 0u32..(1 << 21)) {
            prop_assert_eq!(compact_bits(spread_bits(v)), v);
        }

        #[test]
        fn morton_roundtrip(x in 0u32..(1 << 21), y in 0u32..(1 << 21), z in 0u32..(1 << 21)) {
            prop_assert_eq!(morton_decode(morton_encode(x, y, z)), (x, y, z));
        }

        #[test]
        fn morton_is_monotone_per_axis(x in 0u32..1000, y in 0u32..1000, z in 0u32..1000) {
            // Incrementing any single coordinate strictly increases the code.
            let c = morton_encode(x, y, z);
            prop_assert!(morton_encode(x + 1, y, z) > c);
            prop_assert!(morton_encode(x, y + 1, z) > c);
            prop_assert!(morton_encode(x, y, z + 1) > c);
        }

        #[test]
        fn spread_bits_disjoint_lanes(x in 0u32..(1 << 21), y in 0u32..(1 << 21), z in 0u32..(1 << 21)) {
            // The three shifted spreads occupy disjoint bit positions, so OR == ADD
            // (this is why the paper can write Eq. 2 with '+').
            let a = spread_bits(x);
            let b = spread_bits(y) << 1;
            let c = spread_bits(z) << 2;
            prop_assert_eq!(a & b, 0);
            prop_assert_eq!(a & c, 0);
            prop_assert_eq!(b & c, 0);
            prop_assert_eq!(a + b + c, a | b | c);
        }
    }
}
