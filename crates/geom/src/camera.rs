//! Pinhole cameras and orbit poses for synthetic dataset generation.

use crate::{Ray, Vec3};
use serde::{Deserialize, Serialize};

/// A camera pose: position plus an orthonormal look frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pose {
    /// Camera position in world space.
    pub position: Vec3,
    /// Right (+x in camera space) unit vector.
    pub right: Vec3,
    /// Up (+y in camera space) unit vector.
    pub up: Vec3,
    /// Forward (viewing direction) unit vector.
    pub forward: Vec3,
}

impl Pose {
    /// Builds a pose looking from `eye` toward `target` with the given
    /// approximate `up` hint.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `eye == target` or `up` is parallel to the
    /// view direction.
    pub fn look_at(eye: Vec3, target: Vec3, up_hint: Vec3) -> Self {
        let forward = (target - eye).normalized();
        let right = forward.cross(up_hint).normalized();
        let up = right.cross(forward);
        Pose {
            position: eye,
            right,
            up,
            forward,
        }
    }

    /// A pose on a circular orbit of `radius` around `center`, at azimuth
    /// `theta` (radians, around +y) and elevation `phi` (radians above the
    /// horizon), looking at `center`.
    pub fn orbit(center: Vec3, radius: f32, theta: f32, phi: f32) -> Self {
        let eye = center
            + Vec3::new(
                radius * phi.cos() * theta.cos(),
                radius * phi.sin(),
                radius * phi.cos() * theta.sin(),
            );
        Pose::look_at(eye, center, Vec3::new(0.0, 1.0, 0.0))
    }
}

/// A pinhole camera: a [`Pose`] plus intrinsics.
///
/// # Example
///
/// ```
/// use inerf_geom::{Camera, Pose, Vec3};
/// let pose = Pose::look_at(Vec3::new(0.0, 0.0, -4.0), Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0));
/// let cam = Camera::new(pose, 64, 64, 50.0_f32.to_radians());
/// let center_ray = cam.ray_for_pixel(32, 32);
/// // The centre pixel looks (approximately) straight ahead.
/// assert!(center_ray.direction.dot(pose.forward) > 0.99);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Camera {
    /// Extrinsic pose.
    pub pose: Pose,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Vertical field of view in radians.
    pub fov_y: f32,
}

impl Camera {
    /// Creates a camera.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero, or `fov_y` is not in `(0, π)`.
    pub fn new(pose: Pose, width: u32, height: u32, fov_y: f32) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        assert!(
            fov_y > 0.0 && fov_y < std::f32::consts::PI,
            "fov_y out of range"
        );
        Camera {
            pose,
            width,
            height,
            fov_y,
        }
    }

    /// Total pixel count.
    #[inline]
    pub fn pixel_count(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// The world-space ray through the centre of pixel `(px, py)`.
    ///
    /// Pixel `(0, 0)` is the top-left corner; `py` grows downward.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the pixel is out of bounds.
    pub fn ray_for_pixel(&self, px: u32, py: u32) -> Ray {
        debug_assert!(px < self.width && py < self.height, "pixel out of bounds");
        let aspect = self.width as f32 / self.height as f32;
        let half_h = (self.fov_y * 0.5).tan();
        let half_w = half_h * aspect;
        // NDC in [-1, 1] with pixel-centre offsets.
        let u = ((px as f32 + 0.5) / self.width as f32) * 2.0 - 1.0;
        let v = 1.0 - ((py as f32 + 0.5) / self.height as f32) * 2.0;
        let dir = self.pose.forward + self.pose.right * (u * half_w) + self.pose.up * (v * half_h);
        Ray::new(self.pose.position, dir)
    }

    /// The ray for a flattened pixel index (row-major).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `idx >= pixel_count()`.
    pub fn ray_for_index(&self, idx: usize) -> Ray {
        debug_assert!(idx < self.pixel_count());
        let px = (idx % self.width as usize) as u32;
        let py = (idx / self.width as usize) as u32;
        self.ray_for_pixel(px, py)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_pose() -> Pose {
        Pose::look_at(
            Vec3::new(0.0, 0.0, -4.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
        )
    }

    #[test]
    fn look_at_builds_orthonormal_frame() {
        let p = test_pose();
        assert!((p.right.length() - 1.0).abs() < 1e-5);
        assert!((p.up.length() - 1.0).abs() < 1e-5);
        assert!((p.forward.length() - 1.0).abs() < 1e-5);
        assert!(p.right.dot(p.up).abs() < 1e-5);
        assert!(p.right.dot(p.forward).abs() < 1e-5);
        assert!(p.up.dot(p.forward).abs() < 1e-5);
    }

    #[test]
    fn orbit_keeps_radius_and_looks_at_center() {
        let c = Vec3::new(1.0, 2.0, 3.0);
        for i in 0..8 {
            let theta = i as f32 * std::f32::consts::FRAC_PI_4;
            let p = Pose::orbit(c, 2.5, theta, 0.4);
            assert!(((p.position - c).length() - 2.5).abs() < 1e-4);
            let to_center = (c - p.position).normalized();
            assert!(p.forward.dot(to_center) > 0.999);
        }
    }

    #[test]
    fn corner_rays_diverge_symmetrically() {
        let cam = Camera::new(test_pose(), 100, 100, 60.0_f32.to_radians());
        let tl = cam.ray_for_pixel(0, 0);
        let br = cam.ray_for_pixel(99, 99);
        // Symmetric image: corner rays have equal angle to forward.
        let a = tl.direction.dot(cam.pose.forward);
        let b = br.direction.dot(cam.pose.forward);
        assert!((a - b).abs() < 1e-4);
        assert!(a < 1.0);
    }

    #[test]
    fn ray_for_index_matches_pixel() {
        let cam = Camera::new(test_pose(), 10, 5, 1.0);
        assert_eq!(cam.pixel_count(), 50);
        let r1 = cam.ray_for_pixel(7, 3);
        let r2 = cam.ray_for_index(3 * 10 + 7);
        assert_eq!(r1, r2);
    }

    #[test]
    fn all_rays_originate_at_camera() {
        let cam = Camera::new(test_pose(), 4, 4, 1.0);
        for i in 0..cam.pixel_count() {
            assert_eq!(cam.ray_for_index(i).origin, cam.pose.position);
        }
    }
}
