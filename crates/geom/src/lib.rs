//! 3D math primitives for the Instant-NeRF reproduction.
//!
//! This crate is the bottom of the workspace dependency graph. It provides:
//!
//! * [`Vec3`] — a small, `Copy`, `f32` 3-vector with the usual operators.
//! * [`Ray`] — origin/direction rays with point sampling along `t`.
//! * [`Aabb`] — axis-aligned bounding boxes with slab-test intersection.
//! * [`Camera`] — a pinhole camera generating per-pixel rays, plus orbit-pose
//!   helpers used to build the synthetic datasets.
//! * [`morton`] — 3D Morton (Z-order) encoding, the locality-sensitive hash
//!   basis of the paper's Eq. (2).
//! * [`GridCoord`] / [`GridLevel`] — integer lattice coordinates of the
//!   multi-resolution grids used by the hash encoding.
//!
//! # Example
//!
//! ```
//! use inerf_geom::{Vec3, Ray, Aabb};
//!
//! let ray = Ray::new(Vec3::new(0.0, 0.0, -2.0), Vec3::new(0.0, 0.0, 1.0));
//! let cube = Aabb::unit();
//! let hit = cube.intersect(&ray).expect("ray points at the box");
//! assert!(hit.t_near > 0.0 && hit.t_far > hit.t_near);
//! ```

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod aabb;
pub mod camera;
pub mod grid;
pub mod morton;
pub mod ray;
pub mod vec3;

pub use aabb::{Aabb, RayHit};
pub use camera::{Camera, Pose};
pub use grid::{GridCoord, GridLevel};
pub use ray::Ray;
pub use vec3::Vec3;
