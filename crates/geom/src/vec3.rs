//! A minimal `f32` 3-vector.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Index, Mul, Neg, Sub};

/// A 3-component `f32` vector used for positions, directions and RGB colors.
///
/// # Example
///
/// ```
/// use inerf_geom::Vec3;
/// let v = Vec3::new(3.0, 0.0, 4.0);
/// assert_eq!(v.length(), 5.0);
/// assert_eq!(v.normalized().length(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// x component.
    pub x: f32,
    /// y component.
    pub y: f32,
    /// z component.
    pub z: f32,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (avoids the square root).
    #[inline]
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    /// Returns the unit vector pointing in the same direction.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the vector has zero length.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        debug_assert!(len > 0.0, "cannot normalize a zero-length vector");
        self / len
    }

    /// Component-wise product.
    #[inline]
    pub fn mul_elem(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min_elem(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max_elem(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Component-wise clamp of every component into `[lo, hi]`.
    #[inline]
    pub fn clamp_scalar(self, lo: f32, hi: f32) -> Vec3 {
        Vec3::new(
            self.x.clamp(lo, hi),
            self.y.clamp(lo, hi),
            self.z.clamp(lo, hi),
        )
    }

    /// The smallest component.
    #[inline]
    pub fn min_component(self) -> f32 {
        self.x.min(self.y).min(self.z)
    }

    /// The largest component.
    #[inline]
    pub fn max_component(self) -> f32 {
        self.x.max(self.y).max(self.z)
    }

    /// Linear interpolation: `self * (1 - t) + rhs * t`.
    #[inline]
    pub fn lerp(self, rhs: Vec3, t: f32) -> Vec3 {
        self * (1.0 - t) + rhs * t
    }

    /// Returns `true` if every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Returns the components as an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f32; 3] {
        [self.x, self.y, self.z]
    }
}

impl From<[f32; 3]> for Vec3 {
    fn from(a: [f32; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f32; 3] {
    fn from(v: Vec3) -> Self {
        v.to_array()
    }
}

impl Index<usize> for Vec3 {
    type Output = f32;

    /// Accesses a component by index (0 = x, 1 = y, 2 = z).
    ///
    /// # Panics
    ///
    /// Panics if `i > 2`.
    fn index(&self, i: usize) -> &f32 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f32) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f32 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f32) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basics() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(y.cross(x), Vec3::new(0.0, 0.0, -1.0));
    }

    #[test]
    fn length_and_normalize() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.length(), 5.0);
        assert_eq!(v.length_squared(), 25.0);
        let n = v.normalized();
        assert!((n.length() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn elementwise_helpers() {
        let a = Vec3::new(1.0, 5.0, 3.0);
        let b = Vec3::new(4.0, 2.0, 6.0);
        assert_eq!(a.min_elem(b), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(a.max_elem(b), Vec3::new(4.0, 5.0, 6.0));
        assert_eq!(a.mul_elem(b), Vec3::new(4.0, 10.0, 18.0));
        assert_eq!(a.min_component(), 1.0);
        assert_eq!(a.max_component(), 5.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::ZERO;
        let b = Vec3::ONE;
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::splat(0.5));
    }

    #[test]
    fn clamp_and_index() {
        let v = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(v.clamp_scalar(0.0, 1.0), Vec3::new(0.0, 0.5, 1.0));
        assert_eq!(v[0], -1.0);
        assert_eq!(v[1], 0.5);
        assert_eq!(v[2], 2.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn array_roundtrip() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        let a: [f32; 3] = v.into();
        assert_eq!(Vec3::from(a), v);
    }

    #[test]
    fn finiteness() {
        assert!(Vec3::ONE.is_finite());
        assert!(!Vec3::new(f32::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f32::INFINITY, 0.0).is_finite());
    }
}
