//! Integer lattice coordinates for the multi-resolution grids.

use crate::Vec3;
use serde::{Deserialize, Serialize};

/// An integer vertex coordinate on one resolution level's lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GridCoord {
    /// x lattice index.
    pub x: u32,
    /// y lattice index.
    pub y: u32,
    /// z lattice index.
    pub z: u32,
}

impl GridCoord {
    /// Creates a lattice coordinate.
    #[inline]
    pub const fn new(x: u32, y: u32, z: u32) -> Self {
        GridCoord { x, y, z }
    }

    /// Offsets the coordinate by a corner index `c in 0..8` of the containing
    /// cube: bit 0 → +x, bit 1 → +y, bit 2 → +z.
    #[inline]
    pub const fn corner(self, c: u8) -> Self {
        GridCoord {
            x: self.x + (c & 1) as u32,
            y: self.y + ((c >> 1) & 1) as u32,
            z: self.z + ((c >> 2) & 1) as u32,
        }
    }
}

/// One resolution level of the iNGP multi-resolution grid.
///
/// Level `l` has `resolution = floor(n_min * b^l)` cells per axis, where `b`
/// is the per-level growth factor. A point in `[0,1]^3` falls into exactly
/// one cube per level; [`GridLevel::cube_of`] returns its base vertex and the
/// fractional position inside the cube (the trilinear interpolation weights).
///
/// # Example
///
/// ```
/// use inerf_geom::{GridLevel, Vec3};
/// let level = GridLevel::new(0, 16);
/// let (base, frac) = level.cube_of(Vec3::new(0.5, 0.25, 0.75));
/// assert_eq!((base.x, base.y, base.z), (8, 4, 12));
/// assert!(frac.x.abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridLevel {
    /// Level index `l` (0-based).
    pub index: u32,
    /// Cells per axis at this level.
    pub resolution: u32,
}

impl GridLevel {
    /// Creates a level descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `resolution == 0`.
    pub fn new(index: u32, resolution: u32) -> Self {
        assert!(resolution > 0, "grid resolution must be positive");
        GridLevel { index, resolution }
    }

    /// Number of vertices per axis (`resolution + 1`).
    #[inline]
    pub const fn vertices_per_axis(&self) -> u32 {
        self.resolution + 1
    }

    /// Total vertex count at this level (dense grid).
    #[inline]
    pub const fn dense_vertex_count(&self) -> u64 {
        let v = self.vertices_per_axis() as u64;
        v * v * v
    }

    /// Returns the base (min-corner) vertex of the cube containing `p`
    /// (in `[0,1]^3`) and the fractional position inside the cube.
    ///
    /// Points outside the unit cube are clamped.
    pub fn cube_of(&self, p: Vec3) -> (GridCoord, Vec3) {
        let r = self.resolution as f32;
        let clamp = |v: f32| (v.clamp(0.0, 1.0) * r).min(r - 1e-4);
        let (sx, sy, sz) = (clamp(p.x), clamp(p.y), clamp(p.z));
        let base = GridCoord::new(sx.floor() as u32, sy.floor() as u32, sz.floor() as u32);
        let frac = Vec3::new(sx - base.x as f32, sy - base.y as f32, sz - base.z as f32);
        (base, frac)
    }

    /// The trilinear interpolation weight of corner `c` given the fractional
    /// position `frac` inside the cube.
    #[inline]
    pub fn corner_weight(frac: Vec3, c: u8) -> f32 {
        let wx = if c & 1 == 0 { 1.0 - frac.x } else { frac.x };
        let wy = if (c >> 1) & 1 == 0 {
            1.0 - frac.y
        } else {
            frac.y
        };
        let wz = if (c >> 2) & 1 == 0 {
            1.0 - frac.z
        } else {
            frac.z
        };
        wx * wy * wz
    }
}

/// Computes the iNGP per-level growth factor `b` so that level `levels-1`
/// reaches `n_max` cells per axis starting from `n_min`.
///
/// iNGP (Müller et al. 2022) uses `b = exp((ln n_max - ln n_min) / (L - 1))`.
///
/// # Panics
///
/// Panics if `levels < 2` or `n_max < n_min`.
pub fn growth_factor(n_min: u32, n_max: u32, levels: u32) -> f64 {
    assert!(levels >= 2, "growth factor needs at least two levels");
    assert!(n_max >= n_min, "n_max must be >= n_min");
    (((n_max as f64).ln() - (n_min as f64).ln()) / (levels - 1) as f64).exp()
}

/// Builds all level descriptors for an iNGP grid configuration.
pub fn build_levels(n_min: u32, n_max: u32, levels: u32) -> Vec<GridLevel> {
    if levels == 1 {
        return vec![GridLevel::new(0, n_min)];
    }
    let b = growth_factor(n_min, n_max, levels);
    (0..levels)
        .map(|l| {
            let res = (n_min as f64 * b.powi(l as i32)).floor() as u32;
            GridLevel::new(l, res.max(1))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn corner_offsets_enumerate_cube() {
        let base = GridCoord::new(3, 4, 5);
        let mut seen = std::collections::BTreeSet::new();
        for c in 0..8u8 {
            let v = base.corner(c);
            assert!(v.x - base.x <= 1 && v.y - base.y <= 1 && v.z - base.z <= 1);
            seen.insert(v);
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn cube_of_midpoint() {
        let level = GridLevel::new(0, 4);
        let (base, frac) = level.cube_of(Vec3::splat(0.5));
        assert_eq!(base, GridCoord::new(2, 2, 2));
        assert!(frac.length() < 1e-5);
    }

    #[test]
    fn cube_of_clamps_out_of_range() {
        let level = GridLevel::new(0, 8);
        let (base, _) = level.cube_of(Vec3::new(2.0, -1.0, 0.5));
        assert_eq!(base.x, 7); // clamped below resolution
        assert_eq!(base.y, 0);
    }

    #[test]
    fn growth_factor_matches_ingp_default() {
        // iNGP default: n_min=16, n_max=512, L=16 → b ≈ 1.26.
        let b = growth_factor(16, 512, 16);
        assert!((b - 1.26).abs() < 0.02, "b = {b}");
    }

    #[test]
    fn build_levels_monotone_resolutions() {
        let levels = build_levels(16, 512, 16);
        assert_eq!(levels.len(), 16);
        assert_eq!(levels[0].resolution, 16);
        for w in levels.windows(2) {
            assert!(w[1].resolution >= w[0].resolution);
        }
        assert!(levels[15].resolution >= 500);
    }

    proptest! {
        #[test]
        fn corner_weights_sum_to_one(
            fx in 0.0f32..1.0, fy in 0.0f32..1.0, fz in 0.0f32..1.0
        ) {
            let frac = Vec3::new(fx, fy, fz);
            let total: f32 = (0..8u8).map(|c| GridLevel::corner_weight(frac, c)).sum();
            prop_assert!((total - 1.0).abs() < 1e-5);
            for c in 0..8u8 {
                prop_assert!(GridLevel::corner_weight(frac, c) >= 0.0);
            }
        }

        #[test]
        fn cube_of_base_within_bounds(
            px in -0.5f32..1.5, py in -0.5f32..1.5, pz in -0.5f32..1.5,
            res in 1u32..256
        ) {
            let level = GridLevel::new(0, res);
            let (base, frac) = level.cube_of(Vec3::new(px, py, pz));
            prop_assert!(base.x < res && base.y < res && base.z < res);
            prop_assert!((0.0..=1.0).contains(&frac.x));
            prop_assert!((0.0..=1.0).contains(&frac.y));
            prop_assert!((0.0..=1.0).contains(&frac.z));
        }
    }
}
