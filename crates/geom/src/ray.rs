//! Rays: the fundamental sampling primitive of NeRF training.

use crate::Vec3;
use serde::{Deserialize, Serialize};

/// A ray `r(t) = origin + t * direction` (paper notation: `r = o + t d`).
///
/// The direction is expected to be a unit vector; [`Ray::new`] normalizes it.
///
/// # Example
///
/// ```
/// use inerf_geom::{Ray, Vec3};
/// let r = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 2.0));
/// assert_eq!(r.at(3.0), Vec3::new(0.0, 0.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ray {
    /// Camera/ray origin `o`.
    pub origin: Vec3,
    /// Unit direction `d`.
    pub direction: Vec3,
}

impl Ray {
    /// Creates a ray, normalizing `direction`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `direction` has zero length.
    pub fn new(origin: Vec3, direction: Vec3) -> Self {
        Ray {
            origin,
            direction: direction.normalized(),
        }
    }

    /// The point at parameter `t` along the ray.
    #[inline]
    pub fn at(&self, t: f32) -> Vec3 {
        self.origin + self.direction * t
    }

    /// Produces `n` sample distances, evenly stratified over `[t_near, t_far]`.
    ///
    /// This is Step (b) of the vanilla NeRF pipeline (Fig. 2 in the paper):
    /// each returned `t_i` is the centre of the `i`-th of `n` equal bins, with
    /// an optional per-bin jitter in `[-0.5, 0.5)` bin widths supplied by the
    /// caller for stratified sampling.
    ///
    /// # Panics
    ///
    /// Panics if `t_far <= t_near` or `n == 0`.
    pub fn stratified_ts(
        &self,
        t_near: f32,
        t_far: f32,
        n: usize,
        jitter: Option<&[f32]>,
    ) -> Vec<f32> {
        assert!(
            t_far > t_near,
            "t_far ({t_far}) must exceed t_near ({t_near})"
        );
        assert!(n > 0, "need at least one sample");
        let mut out = Vec::new();
        self.stratified_ts_into(t_near, t_far, n, jitter, &mut out);
        out
    }

    /// [`Ray::stratified_ts`] into a caller-pooled buffer (cleared and
    /// refilled), so per-ray gathering allocates nothing in steady state.
    ///
    /// # Panics
    ///
    /// Panics if `t_far <= t_near` or `n == 0`.
    pub fn stratified_ts_into(
        &self,
        t_near: f32,
        t_far: f32,
        n: usize,
        jitter: Option<&[f32]>,
        out: &mut Vec<f32>,
    ) {
        assert!(
            t_far > t_near,
            "t_far ({t_far}) must exceed t_near ({t_near})"
        );
        assert!(n > 0, "need at least one sample");
        let bin = (t_far - t_near) / n as f32;
        out.clear();
        out.extend((0..n).map(|i| {
            let j = jitter.map_or(0.0, |js| js[i % js.len()]);
            t_near + bin * (i as f32 + 0.5 + j)
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_walks_along_direction() {
        let r = Ray::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0));
        assert_eq!(r.at(0.0), r.origin);
        assert_eq!(r.at(2.0), Vec3::new(1.0, 2.0, 0.0));
    }

    #[test]
    fn direction_is_normalized() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 10.0));
        assert!((r.direction.length() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn stratified_ts_cover_range_in_order() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0));
        let ts = r.stratified_ts(2.0, 6.0, 8, None);
        assert_eq!(ts.len(), 8);
        for w in ts.windows(2) {
            assert!(w[1] > w[0], "sample distances must be increasing");
        }
        assert!(ts[0] >= 2.0 && ts[7] <= 6.0);
        // Bin centres: first sample is at t_near + bin/2.
        assert!((ts[0] - 2.25).abs() < 1e-6);
    }

    #[test]
    fn stratified_ts_respects_jitter() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0));
        let base = r.stratified_ts(0.0, 1.0, 4, None);
        let jittered = r.stratified_ts(0.0, 1.0, 4, Some(&[0.25]));
        for (b, j) in base.iter().zip(&jittered) {
            assert!((j - b - 0.25 * 0.25).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "must exceed")]
    fn stratified_ts_rejects_empty_range() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0));
        let _ = r.stratified_ts(1.0, 1.0, 4, None);
    }
}
