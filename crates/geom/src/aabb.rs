//! Axis-aligned bounding boxes and ray/box intersection.

use crate::{Ray, Vec3};
use serde::{Deserialize, Serialize};

/// The entry/exit distances of a ray through an [`Aabb`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RayHit {
    /// Distance along the ray where it enters the box (clamped to 0).
    pub t_near: f32,
    /// Distance along the ray where it exits the box.
    pub t_far: f32,
}

/// An axis-aligned bounding box; the scene bound of NeRF training.
///
/// iNGP normalizes scene coordinates into the unit cube before hashing;
/// [`Aabb::normalize`] performs that mapping.
///
/// # Example
///
/// ```
/// use inerf_geom::{Aabb, Vec3};
/// let b = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
/// assert_eq!(b.normalize(Vec3::ZERO), Vec3::splat(0.5));
/// assert!(b.contains(Vec3::new(0.9, -0.9, 0.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// Creates a box from its corners.
    ///
    /// # Panics
    ///
    /// Panics if any component of `min` is not strictly below `max`.
    pub fn new(min: Vec3, max: Vec3) -> Self {
        assert!(
            min.x < max.x && min.y < max.y && min.z < max.z,
            "degenerate AABB: min {min:?} must be strictly below max {max:?}"
        );
        Aabb { min, max }
    }

    /// The unit cube `[0,1]^3`.
    pub fn unit() -> Self {
        Aabb {
            min: Vec3::ZERO,
            max: Vec3::ONE,
        }
    }

    /// Edge lengths of the box.
    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// Centre of the box.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Returns `true` if `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Maps `p` from box coordinates into `[0,1]^3`.
    #[inline]
    pub fn normalize(&self, p: Vec3) -> Vec3 {
        let e = self.extent();
        Vec3::new(
            (p.x - self.min.x) / e.x,
            (p.y - self.min.y) / e.y,
            (p.z - self.min.z) / e.z,
        )
    }

    /// Inverse of [`Aabb::normalize`].
    #[inline]
    pub fn denormalize(&self, u: Vec3) -> Vec3 {
        self.min + u.mul_elem(self.extent())
    }

    /// Slab-test ray intersection.
    ///
    /// Returns `None` if the ray misses the box or the box is entirely behind
    /// the ray origin. `t_near` is clamped to zero so sampling can start at
    /// the origin when it lies inside the box.
    pub fn intersect(&self, ray: &Ray) -> Option<RayHit> {
        let mut t0 = 0.0f32;
        let mut t1 = f32::INFINITY;
        for axis in 0..3 {
            let o = ray.origin[axis];
            let d = ray.direction[axis];
            let (lo, hi) = (self.min[axis], self.max[axis]);
            if d.abs() < 1e-12 {
                if o < lo || o > hi {
                    return None;
                }
                continue;
            }
            let inv = 1.0 / d;
            let (mut ta, mut tb) = ((lo - o) * inv, (hi - o) * inv);
            if ta > tb {
                std::mem::swap(&mut ta, &mut tb);
            }
            t0 = t0.max(ta);
            t1 = t1.min(tb);
            if t0 > t1 {
                return None;
            }
        }
        Some(RayHit {
            t_near: t0,
            t_far: t1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_corners_and_center() {
        let b = Aabb::unit();
        assert!(b.contains(Vec3::ZERO));
        assert!(b.contains(Vec3::ONE));
        assert!(b.contains(Vec3::splat(0.5)));
        assert!(!b.contains(Vec3::splat(1.001)));
    }

    #[test]
    fn normalize_roundtrip() {
        let b = Aabb::new(Vec3::splat(-2.0), Vec3::new(2.0, 4.0, 6.0));
        let p = Vec3::new(0.0, 1.0, 2.0);
        let u = b.normalize(p);
        let q = b.denormalize(u);
        assert!((p - q).length() < 1e-5);
    }

    #[test]
    fn intersect_through_center() {
        let b = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
        let r = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0));
        let h = b.intersect(&r).expect("should hit");
        assert!((h.t_near - 4.0).abs() < 1e-5);
        assert!((h.t_far - 6.0).abs() < 1e-5);
    }

    #[test]
    fn intersect_miss() {
        let b = Aabb::unit();
        let r = Ray::new(Vec3::new(5.0, 5.0, 5.0), Vec3::new(1.0, 0.0, 0.0));
        assert!(b.intersect(&r).is_none());
    }

    #[test]
    fn intersect_box_behind_origin() {
        let b = Aabb::unit();
        let r = Ray::new(Vec3::new(0.5, 0.5, 5.0), Vec3::new(0.0, 0.0, 1.0));
        assert!(b.intersect(&r).is_none());
    }

    #[test]
    fn intersect_origin_inside_clamps_near() {
        let b = Aabb::unit();
        let r = Ray::new(Vec3::splat(0.5), Vec3::new(0.0, 0.0, 1.0));
        let h = b.intersect(&r).expect("origin inside must hit");
        assert_eq!(h.t_near, 0.0);
        assert!((h.t_far - 0.5).abs() < 1e-5);
    }

    #[test]
    fn intersect_parallel_ray_inside_slab() {
        let b = Aabb::unit();
        // Ray parallel to x axis, inside the y/z slabs.
        let r = Ray::new(Vec3::new(-3.0, 0.5, 0.5), Vec3::new(1.0, 0.0, 0.0));
        let h = b.intersect(&r).expect("should hit");
        assert!((h.t_near - 3.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_box_panics() {
        let _ = Aabb::new(Vec3::ONE, Vec3::ONE);
    }
}
