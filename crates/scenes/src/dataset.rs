//! Posed multi-view datasets: the training/test data of NeRF.

use crate::field::Scene;
use crate::image::Image;
use crate::oracle;
use inerf_geom::{Aabb, Camera, Pose, Vec3};

/// One posed view: a camera and its ground-truth image.
#[derive(Debug, Clone)]
pub struct View {
    /// The camera that produced the image.
    pub camera: Camera,
    /// Ground-truth image rendered by the oracle.
    pub image: Image,
}

/// Configuration for dataset generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetConfig {
    /// Number of training views on the orbit.
    pub train_views: usize,
    /// Number of held-out test views (interleaved on the orbit).
    pub test_views: usize,
    /// Image resolution (square images).
    pub resolution: u32,
    /// Oracle quadrature samples per ray.
    pub oracle_samples: usize,
    /// Orbit radius around the scene centre.
    pub orbit_radius: f32,
    /// Vertical field of view in radians.
    pub fov_y: f32,
}

impl DatasetConfig {
    /// A tiny configuration for unit tests (seconds to generate).
    pub fn tiny() -> Self {
        DatasetConfig {
            train_views: 6,
            test_views: 2,
            resolution: 16,
            oracle_samples: 48,
            orbit_radius: 3.2,
            fov_y: 0.7,
        }
    }

    /// A small configuration for examples and PSNR experiments.
    pub fn small() -> Self {
        DatasetConfig {
            train_views: 20,
            test_views: 4,
            resolution: 48,
            oracle_samples: 96,
            orbit_radius: 3.2,
            fov_y: 0.7,
        }
    }

    /// Generates the dataset by rendering oracle images from orbit poses.
    ///
    /// Poses alternate between two elevation bands so training views and
    /// held-out test views cover the scene from distinct directions, as the
    /// Blender datasets do.
    ///
    /// # Panics
    ///
    /// Panics if `train_views == 0`.
    pub fn generate(&self, scene: &Scene) -> Dataset {
        assert!(self.train_views > 0, "need at least one training view");
        let center = scene.bounds.center();
        let total = self.train_views + self.test_views;
        let mut train = Vec::with_capacity(self.train_views);
        let mut test = Vec::with_capacity(self.test_views);
        for i in 0..total {
            let theta = std::f32::consts::TAU * i as f32 / total as f32;
            let phi = 0.35 + 0.25 * ((i % 3) as f32 - 1.0); // three elevation bands
            let pose = Pose::orbit(center, self.orbit_radius, theta, phi);
            let camera = Camera::new(pose, self.resolution, self.resolution, self.fov_y);
            let image = oracle::render_image(scene, &camera, self.oracle_samples);
            let view = View { camera, image };
            // Interleave: every (train+test)/test-th view is held out.
            let is_test = self.test_views > 0
                && (i + 1) % (total / self.test_views.max(1)).max(1) == 0
                && test.len() < self.test_views;
            if is_test {
                test.push(view);
            } else {
                train.push(view);
            }
        }
        // If interleaving under-filled the test set, move views from train.
        while test.len() < self.test_views {
            test.push(train.pop().expect("enough views"));
        }
        while train.len() > self.train_views {
            train.pop();
        }
        Dataset {
            scene_name: scene.name.clone(),
            bounds: scene.bounds,
            train_views: train,
            test_views: test,
        }
    }
}

/// A generated multi-view dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Name of the source scene.
    pub scene_name: String,
    /// Scene bounds (training normalizes sample points into this box).
    pub bounds: Aabb,
    /// Views used for training.
    pub train_views: Vec<View>,
    /// Held-out views used for PSNR evaluation.
    pub test_views: Vec<View>,
}

impl Dataset {
    /// Total number of training pixels (the pool Step (a) of the pipeline
    /// randomly draws batches from).
    pub fn train_pixel_count(&self) -> usize {
        self.train_views
            .iter()
            .map(|v| v.camera.pixel_count())
            .sum()
    }

    /// Returns the `(view, pixel x, pixel y, ground-truth color)` tuple for a
    /// flattened training-pixel index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= train_pixel_count()`.
    pub fn train_pixel(&self, idx: usize) -> (usize, u32, u32, Vec3) {
        let mut rem = idx;
        for (vi, view) in self.train_views.iter().enumerate() {
            let n = view.camera.pixel_count();
            if rem < n {
                let x = (rem % view.camera.width as usize) as u32;
                let y = (rem / view.camera.width as usize) as u32;
                return (vi, x, y, view.image.get(x, y));
            }
            rem -= n;
        }
        panic!("train pixel index {idx} out of range");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{scene, SceneKind};

    #[test]
    fn tiny_dataset_shape() {
        let ds = DatasetConfig::tiny().generate(&scene(SceneKind::Mic));
        assert_eq!(ds.train_views.len(), 6);
        assert_eq!(ds.test_views.len(), 2);
        assert_eq!(ds.train_pixel_count(), 6 * 16 * 16);
        assert_eq!(ds.scene_name, "Mic");
    }

    #[test]
    fn views_are_not_black() {
        let ds = DatasetConfig::tiny().generate(&scene(SceneKind::Hotdog));
        for v in ds.train_views.iter().chain(&ds.test_views) {
            assert!(
                v.image.mean() > 0.005,
                "a view of Hotdog should see the scene"
            );
        }
    }

    #[test]
    fn train_pixel_indexing_consistent() {
        let ds = DatasetConfig::tiny().generate(&scene(SceneKind::Chair));
        let (vi, x, y, c) = ds.train_pixel(16 * 16 + 17); // second view, pixel (1,1)
        assert_eq!(vi, 1);
        assert_eq!((x, y), (1, 1));
        assert_eq!(c, ds.train_views[1].image.get(1, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn train_pixel_out_of_range_panics() {
        let ds = DatasetConfig::tiny().generate(&scene(SceneKind::Chair));
        let _ = ds.train_pixel(ds.train_pixel_count());
    }

    #[test]
    fn poses_are_distinct() {
        let ds = DatasetConfig::tiny().generate(&scene(SceneKind::Drums));
        for (i, a) in ds.train_views.iter().enumerate() {
            for b in &ds.train_views[i + 1..] {
                assert!(
                    (a.camera.pose.position - b.camera.pose.position).length() > 1e-3,
                    "duplicate poses in dataset"
                );
            }
        }
    }
}
