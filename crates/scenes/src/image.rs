//! Image buffers and quality metrics (MSE, PSNR).

use inerf_geom::Vec3;
use serde::{Deserialize, Serialize};

/// A row-major RGB image with `f32` channels in `[0, 1]`.
///
/// # Example
///
/// ```
/// use inerf_scenes::Image;
/// use inerf_geom::Vec3;
///
/// let mut img = Image::new(4, 2);
/// img.set(3, 1, Vec3::new(1.0, 0.5, 0.0));
/// assert_eq!(img.get(3, 1).x, 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Image {
    width: u32,
    height: u32,
    pixels: Vec<Vec3>,
}

impl Image {
    /// Creates a black image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Image {
            width,
            height,
            pixels: vec![Vec3::ZERO; (width * height) as usize],
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total pixel count.
    pub fn pixel_count(&self) -> usize {
        self.pixels.len()
    }

    /// All pixels, row-major.
    pub fn pixels(&self) -> &[Vec3] {
        &self.pixels
    }

    /// Mutable access to all pixels, row-major.
    pub fn pixels_mut(&mut self) -> &mut [Vec3] {
        &mut self.pixels
    }

    /// Reads pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn get(&self, x: u32, y: u32) -> Vec3 {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.pixels[(y * self.width + x) as usize]
    }

    /// Writes pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn set(&mut self, x: u32, y: u32, c: Vec3) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.pixels[(y * self.width + x) as usize] = c;
    }

    /// Mean pixel value over all channels (useful as a cheap fingerprint).
    pub fn mean(&self) -> f32 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        let sum: f32 = self.pixels.iter().map(|p| p.x + p.y + p.z).sum();
        sum / (3.0 * self.pixels.len() as f32)
    }

    /// Writes the image as a binary PPM (P6) byte buffer, for debugging.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        for p in &self.pixels {
            for ch in [p.x, p.y, p.z] {
                out.push((ch.clamp(0.0, 1.0) * 255.0).round() as u8);
            }
        }
        out
    }
}

/// Mean squared error between two images, averaged over all channels.
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn mse(a: &Image, b: &Image) -> f64 {
    assert_eq!(
        (a.width, a.height),
        (b.width, b.height),
        "mse requires equal image dimensions"
    );
    let mut acc = 0.0f64;
    for (pa, pb) in a.pixels.iter().zip(&b.pixels) {
        let d = *pa - *pb;
        acc +=
            (d.x as f64) * (d.x as f64) + (d.y as f64) * (d.y as f64) + (d.z as f64) * (d.z as f64);
    }
    acc / (3.0 * a.pixels.len() as f64)
}

/// Peak signal-to-noise ratio in dB: `10 log10(1 / mse)`.
///
/// Identical images return `f64::INFINITY`.
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn psnr(a: &Image, b: &Image) -> f64 {
    let m = mse(a, b);
    if m <= 0.0 {
        return f64::INFINITY;
    }
    10.0 * (1.0 / m).log10()
}

/// PSNR computed directly from a mean squared error value.
pub fn psnr_from_mse(m: f64) -> f64 {
    if m <= 0.0 {
        f64::INFINITY
    } else {
        10.0 * (1.0 / m).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut img = Image::new(3, 2);
        img.set(2, 1, Vec3::new(0.1, 0.2, 0.3));
        assert_eq!(img.get(2, 1), Vec3::new(0.1, 0.2, 0.3));
        assert_eq!(img.get(0, 0), Vec3::ZERO);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        let img = Image::new(2, 2);
        let _ = img.get(2, 0);
    }

    #[test]
    fn identical_images_have_infinite_psnr() {
        let img = Image::new(4, 4);
        assert_eq!(mse(&img, &img), 0.0);
        assert_eq!(psnr(&img, &img), f64::INFINITY);
    }

    #[test]
    fn known_mse_psnr() {
        let a = Image::new(2, 2);
        let mut b = Image::new(2, 2);
        for p in b.pixels_mut() {
            *p = Vec3::splat(0.1);
        }
        // Every channel differs by 0.1 → MSE = 0.01 → PSNR = 20 dB.
        assert!((mse(&a, &b) - 0.01).abs() < 1e-9);
        assert!((psnr(&a, &b) - 20.0).abs() < 1e-6);
    }

    #[test]
    fn psnr_from_mse_matches() {
        assert!((psnr_from_mse(0.01) - 20.0).abs() < 1e-9);
        assert_eq!(psnr_from_mse(0.0), f64::INFINITY);
    }

    #[test]
    fn ppm_header_and_size() {
        let img = Image::new(5, 3);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n5 3\n255\n"));
        assert_eq!(ppm.len(), b"P6\n5 3\n255\n".len() + 5 * 3 * 3);
    }

    #[test]
    fn mean_of_uniform_image() {
        let mut img = Image::new(2, 2);
        for p in img.pixels_mut() {
            *p = Vec3::new(0.5, 0.5, 0.5);
        }
        assert!((img.mean() - 0.5).abs() < 1e-6);
    }
}

/// Structural similarity (SSIM) between two images, averaged over RGB
/// channels, using the standard global-statistics formulation of Hore &
/// Ziou (the paper's reference \[6\] compares PSNR against this metric).
///
/// Returns a value in `[-1, 1]`; 1 means identical.
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn ssim(a: &Image, b: &Image) -> f64 {
    assert_eq!(
        (a.width, a.height),
        (b.width, b.height),
        "ssim requires equal image dimensions"
    );
    const C1: f64 = 0.01 * 0.01; // (k1 L)^2 with L = 1
    const C2: f64 = 0.03 * 0.03;
    let n = a.pixels.len() as f64;
    let mut total = 0.0;
    for ch in 0..3usize {
        let va: Vec<f64> = a.pixels.iter().map(|p| p[ch] as f64).collect();
        let vb: Vec<f64> = b.pixels.iter().map(|p| p[ch] as f64).collect();
        let mu_a = va.iter().sum::<f64>() / n;
        let mu_b = vb.iter().sum::<f64>() / n;
        let var_a = va.iter().map(|x| (x - mu_a) * (x - mu_a)).sum::<f64>() / n;
        let var_b = vb.iter().map(|x| (x - mu_b) * (x - mu_b)).sum::<f64>() / n;
        let cov = va
            .iter()
            .zip(&vb)
            .map(|(x, y)| (x - mu_a) * (y - mu_b))
            .sum::<f64>()
            / n;
        total += ((2.0 * mu_a * mu_b + C1) * (2.0 * cov + C2))
            / ((mu_a * mu_a + mu_b * mu_b + C1) * (var_a + var_b + C2));
    }
    total / 3.0
}

#[cfg(test)]
mod ssim_tests {
    use super::*;

    fn noisy(img: &Image, amp: f32) -> Image {
        let mut out = img.clone();
        for (i, p) in out.pixels_mut().iter_mut().enumerate() {
            let d = amp * if i % 2 == 0 { 1.0 } else { -1.0 };
            *p = (*p + Vec3::splat(d)).clamp_scalar(0.0, 1.0);
        }
        out
    }

    fn gradient_image() -> Image {
        let mut img = Image::new(16, 16);
        for y in 0..16 {
            for x in 0..16 {
                img.set(x, y, Vec3::splat((x + y) as f32 / 30.0));
            }
        }
        img
    }

    #[test]
    fn identical_images_score_one() {
        let img = gradient_image();
        assert!((ssim(&img, &img) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ssim_decreases_with_noise() {
        let img = gradient_image();
        let small = ssim(&img, &noisy(&img, 0.05));
        let large = ssim(&img, &noisy(&img, 0.3));
        assert!(
            small > large,
            "more noise must lower SSIM: {small} vs {large}"
        );
        assert!(small < 1.0);
    }

    #[test]
    fn ssim_bounded() {
        let img = gradient_image();
        let mut inverted = img.clone();
        for p in inverted.pixels_mut() {
            *p = Vec3::ONE - *p;
        }
        let v = ssim(&img, &inverted);
        assert!((-1.0..=1.0).contains(&v));
    }
}
