//! Radiance fields: the ground-truth scene representation.
//!
//! A [`RadianceField`] maps a 3D point (and viewing direction) to an
//! emission-absorption sample: a non-negative density `sigma` and an RGB
//! color. The procedural scenes are built from smooth primitives so that a
//! small neural model can actually fit them — mirroring how the Blender
//! scenes are fit by iNGP.

use inerf_geom::{Aabb, Vec3};

/// One sample of a radiance field: density and color at a point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadianceSample {
    /// Volume density `σ ≥ 0` (absorption/emission coefficient).
    pub sigma: f32,
    /// Emitted RGB color, each channel in `[0, 1]`.
    pub color: Vec3,
}

impl RadianceSample {
    /// A fully transparent sample.
    pub const EMPTY: RadianceSample = RadianceSample {
        sigma: 0.0,
        color: Vec3::ZERO,
    };
}

/// A continuous density + color field over 3D space.
///
/// Directions allow mild view dependence (specular tint), exercising the same
/// color-MLP input path the paper's pipeline uses.
pub trait RadianceField: Send + Sync {
    /// Samples the field at world-space point `p` viewed along unit
    /// direction `d`.
    fn sample(&self, p: Vec3, d: Vec3) -> RadianceSample;
}

/// A smooth blob: Gaussian-falloff density around a center.
#[derive(Debug, Clone, Copy)]
pub struct Blob {
    /// Center of the blob.
    pub center: Vec3,
    /// Radius at which density has fallen to ~60%.
    pub radius: f32,
    /// Peak density.
    pub peak: f32,
    /// Base albedo.
    pub color: Vec3,
    /// View-dependent tint strength in `[0, 1]`.
    pub sheen: f32,
}

impl Blob {
    fn eval(&self, p: Vec3, d: Vec3) -> RadianceSample {
        let r2 = (p - self.center).length_squared() / (self.radius * self.radius);
        if r2 > 9.0 {
            return RadianceSample::EMPTY;
        }
        let sigma = self.peak * (-r2).exp();
        // View-dependent sheen: brighter when looking along the outward normal.
        let color = if self.sheen > 0.0 && r2 > 1e-8 {
            let n = (p - self.center).normalized();
            let facing = (-d.dot(n)).max(0.0);
            (self.color * (1.0 - self.sheen) + Vec3::ONE * (self.sheen * facing))
                .clamp_scalar(0.0, 1.0)
        } else {
            self.color
        };
        RadianceSample { sigma, color }
    }
}

/// A soft box: density fading smoothly near the surface of a cuboid.
#[derive(Debug, Clone, Copy)]
pub struct SoftBox {
    /// Box center.
    pub center: Vec3,
    /// Half-extents along each axis.
    pub half: Vec3,
    /// Edge softness (distance over which density decays outside).
    pub softness: f32,
    /// Peak density.
    pub peak: f32,
    /// Albedo.
    pub color: Vec3,
}

impl SoftBox {
    fn eval(&self, p: Vec3) -> RadianceSample {
        let q = p - self.center;
        let ex = (q.x.abs() - self.half.x).max(0.0);
        let ey = (q.y.abs() - self.half.y).max(0.0);
        let ez = (q.z.abs() - self.half.z).max(0.0);
        let outside = (ex * ex + ey * ey + ez * ez).sqrt();
        if outside > 3.0 * self.softness {
            return RadianceSample::EMPTY;
        }
        let t = outside / self.softness;
        let sigma = self.peak * (-t * t).exp();
        RadianceSample {
            sigma,
            color: self.color,
        }
    }
}

/// A smooth torus lying in the XZ plane.
#[derive(Debug, Clone, Copy)]
pub struct SoftTorus {
    /// Torus center.
    pub center: Vec3,
    /// Major radius (ring radius).
    pub major: f32,
    /// Minor radius (tube radius, Gaussian falloff scale).
    pub minor: f32,
    /// Peak density.
    pub peak: f32,
    /// Albedo.
    pub color: Vec3,
}

impl SoftTorus {
    fn eval(&self, p: Vec3) -> RadianceSample {
        let q = p - self.center;
        let ring = (q.x * q.x + q.z * q.z).sqrt() - self.major;
        let d2 = (ring * ring + q.y * q.y) / (self.minor * self.minor);
        if d2 > 9.0 {
            return RadianceSample::EMPTY;
        }
        RadianceSample {
            sigma: self.peak * (-d2).exp(),
            color: self.color,
        }
    }
}

/// One primitive of a [`Scene`].
#[derive(Debug, Clone, Copy)]
pub enum Primitive {
    /// Gaussian blob.
    Blob(Blob),
    /// Soft-edged box.
    Box(SoftBox),
    /// Soft torus.
    Torus(SoftTorus),
}

impl Primitive {
    fn eval(&self, p: Vec3, d: Vec3) -> RadianceSample {
        match self {
            Primitive::Blob(b) => b.eval(p, d),
            Primitive::Box(b) => b.eval(p),
            Primitive::Torus(t) => t.eval(p),
        }
    }
}

/// A named procedural scene: a set of primitives plus a bounding box.
///
/// Densities add; colors are density-weighted averages, the standard way to
/// compose emission-absorption media.
#[derive(Debug, Clone)]
pub struct Scene {
    /// Human-readable name (matches the paper's dataset names).
    pub name: String,
    /// Scene bounds; cameras orbit just outside, and training normalizes
    /// coordinates into this box.
    pub bounds: Aabb,
    primitives: Vec<Primitive>,
}

impl Scene {
    /// Creates a scene from primitives.
    ///
    /// # Panics
    ///
    /// Panics if `primitives` is empty.
    pub fn new(name: impl Into<String>, bounds: Aabb, primitives: Vec<Primitive>) -> Self {
        assert!(
            !primitives.is_empty(),
            "a scene needs at least one primitive"
        );
        Scene {
            name: name.into(),
            bounds,
            primitives,
        }
    }

    /// The primitives composing the scene.
    pub fn primitives(&self) -> &[Primitive] {
        &self.primitives
    }
}

impl RadianceField for Scene {
    fn sample(&self, p: Vec3, d: Vec3) -> RadianceSample {
        let mut sigma = 0.0f32;
        let mut color_acc = Vec3::ZERO;
        for prim in &self.primitives {
            let s = prim.eval(p, d);
            sigma += s.sigma;
            color_acc += s.color * s.sigma;
        }
        if sigma <= 1e-9 {
            return RadianceSample::EMPTY;
        }
        RadianceSample {
            sigma,
            color: color_acc / sigma,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blob_peaks_at_center_and_decays() {
        let b = Blob {
            center: Vec3::ZERO,
            radius: 0.5,
            peak: 4.0,
            color: Vec3::ONE,
            sheen: 0.0,
        };
        let at_center = b.eval(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
        let off = b.eval(Vec3::new(0.5, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0));
        assert!((at_center.sigma - 4.0).abs() < 1e-5);
        assert!(off.sigma < at_center.sigma);
        let far = b.eval(Vec3::new(10.0, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(far.sigma, 0.0);
    }

    #[test]
    fn blob_sheen_is_view_dependent() {
        let b = Blob {
            center: Vec3::ZERO,
            radius: 0.5,
            peak: 1.0,
            color: Vec3::new(1.0, 0.0, 0.0),
            sheen: 0.8,
        };
        let p = Vec3::new(0.4, 0.0, 0.0);
        let head_on = b.eval(p, Vec3::new(-1.0, 0.0, 0.0));
        let grazing = b.eval(p, Vec3::new(0.0, 0.0, 1.0));
        // Looking straight at the outward normal brightens all channels.
        assert!(head_on.color.y > grazing.color.y);
    }

    #[test]
    fn soft_box_full_inside_zero_far() {
        let b = SoftBox {
            center: Vec3::ZERO,
            half: Vec3::splat(0.5),
            softness: 0.1,
            peak: 2.0,
            color: Vec3::ONE,
        };
        assert!((b.eval(Vec3::ZERO).sigma - 2.0).abs() < 1e-5);
        assert!((b.eval(Vec3::new(0.49, 0.0, 0.0)).sigma - 2.0).abs() < 1e-5);
        assert_eq!(b.eval(Vec3::new(5.0, 0.0, 0.0)).sigma, 0.0);
    }

    #[test]
    fn torus_peaks_on_ring() {
        let t = SoftTorus {
            center: Vec3::ZERO,
            major: 0.5,
            minor: 0.1,
            peak: 3.0,
            color: Vec3::ONE,
        };
        let on_ring = t.eval(Vec3::new(0.5, 0.0, 0.0));
        assert!((on_ring.sigma - 3.0).abs() < 1e-4);
        let at_center = t.eval(Vec3::ZERO);
        assert!(at_center.sigma < 1e-3);
    }

    #[test]
    fn scene_composes_density_weighted_colors() {
        let red = Blob {
            center: Vec3::ZERO,
            radius: 1.0,
            peak: 1.0,
            color: Vec3::new(1.0, 0.0, 0.0),
            sheen: 0.0,
        };
        let blue = Blob {
            center: Vec3::ZERO,
            radius: 1.0,
            peak: 3.0,
            color: Vec3::new(0.0, 0.0, 1.0),
            sheen: 0.0,
        };
        let scene = Scene::new(
            "mix",
            Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)),
            vec![Primitive::Blob(red), Primitive::Blob(blue)],
        );
        let s = scene.sample(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
        assert!((s.sigma - 4.0).abs() < 1e-5);
        // Color is 1/4 red + 3/4 blue.
        assert!((s.color.x - 0.25).abs() < 1e-5);
        assert!((s.color.z - 0.75).abs() < 1e-5);
    }

    #[test]
    fn empty_region_is_empty_sample() {
        let scene = Scene::new(
            "one",
            Aabb::unit(),
            vec![Primitive::Blob(Blob {
                center: Vec3::splat(0.5),
                radius: 0.05,
                peak: 1.0,
                color: Vec3::ONE,
                sheen: 0.0,
            })],
        );
        let s = scene.sample(Vec3::new(100.0, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(s, RadianceSample::EMPTY);
    }
}
