//! The eight named procedural scenes.
//!
//! Names mirror the Synthetic-NeRF datasets used in the paper (chair, drums,
//! ficus, hotdog, lego, materials, mic, ship). Each scene is composed to have
//! a loosely analogous structure — e.g. "drums" is a cluster of short
//! cylinders approximated by boxes and tori, "ficus" is a spray of small
//! blobs, "materials" has strong view-dependent sheen — so the scenes stress
//! the training pipeline in qualitatively different ways, as the originals
//! do.

use crate::field::{Blob, Primitive, Scene, SoftBox, SoftTorus};
use inerf_geom::{Aabb, Vec3};

/// The eight datasets of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SceneKind {
    /// Chair: a boxy seat with legs.
    Chair,
    /// Drums: a kit of cylinders and rings.
    Drums,
    /// Ficus: a plant — many small leaf blobs on a trunk.
    Ficus,
    /// Hotdog: two long soft shapes on a plate.
    Hotdog,
    /// Lego: a blocky grid of bricks.
    Lego,
    /// Materials: shiny spheres with strong view dependence.
    Materials,
    /// Mic: a thin stand with a round head.
    Mic,
    /// Ship: a hull with masts over a water plane.
    Ship,
}

impl SceneKind {
    /// All eight scenes, in the paper's table order.
    pub const ALL: [SceneKind; 8] = [
        SceneKind::Chair,
        SceneKind::Drums,
        SceneKind::Ficus,
        SceneKind::Hotdog,
        SceneKind::Lego,
        SceneKind::Materials,
        SceneKind::Mic,
        SceneKind::Ship,
    ];

    /// The scene's display name, matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            SceneKind::Chair => "Chair",
            SceneKind::Drums => "Drums",
            SceneKind::Ficus => "Ficus",
            SceneKind::Hotdog => "Hotdog",
            SceneKind::Lego => "Lego",
            SceneKind::Materials => "Materials",
            SceneKind::Mic => "Mic",
            SceneKind::Ship => "Ship",
        }
    }
}

impl std::fmt::Display for SceneKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn bounds() -> Aabb {
    Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0))
}

fn blob(c: [f32; 3], r: f32, peak: f32, col: [f32; 3], sheen: f32) -> Primitive {
    Primitive::Blob(Blob {
        center: c.into(),
        radius: r,
        peak,
        color: col.into(),
        sheen,
    })
}

fn bx(c: [f32; 3], h: [f32; 3], peak: f32, col: [f32; 3]) -> Primitive {
    Primitive::Box(SoftBox {
        center: c.into(),
        half: h.into(),
        softness: 0.06,
        peak,
        color: col.into(),
    })
}

fn torus(c: [f32; 3], major: f32, minor: f32, peak: f32, col: [f32; 3]) -> Primitive {
    Primitive::Torus(SoftTorus {
        center: c.into(),
        major,
        minor,
        peak,
        color: col.into(),
    })
}

/// Builds the named procedural scene.
///
/// # Example
///
/// ```
/// use inerf_scenes::zoo::{scene, SceneKind};
/// let s = scene(SceneKind::Chair);
/// assert_eq!(s.name, "Chair");
/// ```
pub fn scene(kind: SceneKind) -> Scene {
    let prims = match kind {
        SceneKind::Chair => vec![
            bx([0.0, -0.1, 0.0], [0.35, 0.06, 0.35], 8.0, [0.7, 0.45, 0.2]), // seat
            bx([0.0, 0.35, -0.3], [0.35, 0.35, 0.05], 8.0, [0.7, 0.45, 0.2]), // back
            bx(
                [-0.3, -0.5, -0.3],
                [0.05, 0.35, 0.05],
                8.0,
                [0.45, 0.3, 0.15],
            ),
            bx(
                [0.3, -0.5, -0.3],
                [0.05, 0.35, 0.05],
                8.0,
                [0.45, 0.3, 0.15],
            ),
            bx(
                [-0.3, -0.5, 0.3],
                [0.05, 0.35, 0.05],
                8.0,
                [0.45, 0.3, 0.15],
            ),
            bx([0.3, -0.5, 0.3], [0.05, 0.35, 0.05], 8.0, [0.45, 0.3, 0.15]),
        ],
        SceneKind::Drums => vec![
            bx([-0.3, -0.3, 0.0], [0.22, 0.18, 0.22], 7.0, [0.85, 0.2, 0.2]), // kick
            bx(
                [0.25, -0.15, 0.25],
                [0.15, 0.08, 0.15],
                7.0,
                [0.9, 0.9, 0.85],
            ), // snare
            bx(
                [0.3, -0.15, -0.3],
                [0.13, 0.07, 0.13],
                7.0,
                [0.9, 0.9, 0.85],
            ), // tom
            torus([0.0, 0.35, 0.0], 0.35, 0.035, 6.0, [0.9, 0.8, 0.3]),       // cymbal ring
            torus([-0.35, 0.5, -0.2], 0.2, 0.03, 6.0, [0.9, 0.8, 0.3]),       // hi-hat
        ],
        SceneKind::Ficus => {
            let mut prims = vec![bx(
                [0.0, -0.45, 0.0],
                [0.05, 0.4, 0.05],
                7.0,
                [0.4, 0.25, 0.1],
            )];
            // Deterministic leaf spray around the trunk top.
            let golden = 2.399_963_2_f32; // golden angle, radians
            for i in 0..24 {
                let a = golden * i as f32;
                let h = 0.05 + 0.6 * (i as f32 / 24.0);
                let r = 0.15 + 0.25 * (1.0 - (i as f32 / 24.0 - 0.5).abs() * 2.0);
                prims.push(blob(
                    [r * a.cos(), h - 0.35, r * a.sin()],
                    0.09,
                    5.0,
                    [0.1, 0.5 + 0.02 * (i % 5) as f32, 0.12],
                    0.0,
                ));
            }
            prims
        }
        SceneKind::Hotdog => vec![
            bx([0.0, -0.4, 0.0], [0.55, 0.04, 0.4], 7.0, [0.95, 0.93, 0.88]), // plate
            blob([-0.25, -0.2, 0.08], 0.16, 6.0, [0.75, 0.3, 0.1], 0.1),
            blob([0.0, -0.2, 0.08], 0.16, 6.0, [0.75, 0.3, 0.1], 0.1),
            blob([0.25, -0.2, 0.08], 0.16, 6.0, [0.75, 0.3, 0.1], 0.1),
            blob([-0.25, -0.2, -0.14], 0.16, 6.0, [0.8, 0.55, 0.25], 0.1),
            blob([0.0, -0.2, -0.14], 0.16, 6.0, [0.8, 0.55, 0.25], 0.1),
            blob([0.25, -0.2, -0.14], 0.16, 6.0, [0.8, 0.55, 0.25], 0.1),
        ],
        SceneKind::Lego => {
            let mut prims = Vec::new();
            let colors = [
                [0.9, 0.1, 0.1],
                [0.95, 0.8, 0.1],
                [0.1, 0.3, 0.85],
                [0.1, 0.7, 0.2],
            ];
            for ix in 0..3 {
                for iz in 0..3 {
                    for iy in 0..2 {
                        let c = colors[(ix + iz * 3 + iy) % 4];
                        prims.push(bx(
                            [
                                -0.4 + 0.4 * ix as f32,
                                -0.35 + 0.35 * iy as f32 + 0.1 * ((ix + iz) % 2) as f32,
                                -0.4 + 0.4 * iz as f32,
                            ],
                            [0.14, 0.12, 0.14],
                            8.0,
                            c,
                        ));
                    }
                }
            }
            prims
        }
        SceneKind::Materials => vec![
            blob([-0.5, -0.2, -0.25], 0.2, 6.0, [0.9, 0.2, 0.2], 0.7),
            blob([0.0, -0.2, -0.25], 0.2, 6.0, [0.2, 0.9, 0.2], 0.7),
            blob([0.5, -0.2, -0.25], 0.2, 6.0, [0.2, 0.2, 0.9], 0.7),
            blob([-0.25, -0.2, 0.25], 0.2, 6.0, [0.9, 0.9, 0.2], 0.5),
            blob([0.25, -0.2, 0.25], 0.2, 6.0, [0.9, 0.3, 0.9], 0.5),
            bx(
                [0.0, -0.48, 0.0],
                [0.8, 0.04, 0.55],
                7.0,
                [0.35, 0.35, 0.38],
            ),
        ],
        SceneKind::Mic => vec![
            bx(
                [0.0, -0.55, 0.0],
                [0.25, 0.04, 0.25],
                7.0,
                [0.25, 0.25, 0.28],
            ), // base
            bx([0.0, -0.1, 0.0], [0.03, 0.45, 0.03], 7.0, [0.5, 0.5, 0.55]), // stand
            blob([0.0, 0.45, 0.0], 0.18, 6.0, [0.75, 0.75, 0.8], 0.4),       // head
            torus([0.0, 0.45, 0.0], 0.2, 0.03, 5.0, [0.3, 0.3, 0.33]),       // grille ring
        ],
        SceneKind::Ship => vec![
            bx([0.0, -0.45, 0.0], [0.9, 0.05, 0.9], 4.0, [0.1, 0.25, 0.4]), // water
            bx([0.0, -0.25, 0.0], [0.5, 0.12, 0.2], 7.0, [0.5, 0.32, 0.15]), // hull
            bx(
                [-0.15, 0.15, 0.0],
                [0.025, 0.35, 0.025],
                7.0,
                [0.4, 0.28, 0.14],
            ), // mast 1
            bx([0.2, 0.05, 0.0], [0.02, 0.25, 0.02], 7.0, [0.4, 0.28, 0.14]), // mast 2
            bx(
                [-0.15, 0.25, 0.0],
                [0.18, 0.14, 0.015],
                5.0,
                [0.9, 0.88, 0.8],
            ), // sail 1
            bx([0.2, 0.1, 0.0], [0.13, 0.1, 0.015], 5.0, [0.9, 0.88, 0.8]), // sail 2
        ],
    };
    Scene::new(kind.name(), bounds(), prims)
}

/// Builds all eight scenes in table order.
pub fn all_scenes() -> Vec<Scene> {
    SceneKind::ALL.iter().map(|k| scene(*k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::RadianceField;

    #[test]
    fn all_eight_scenes_build() {
        let scenes = all_scenes();
        assert_eq!(scenes.len(), 8);
        let names: Vec<&str> = scenes.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "Chair",
                "Drums",
                "Ficus",
                "Hotdog",
                "Lego",
                "Materials",
                "Mic",
                "Ship"
            ]
        );
    }

    #[test]
    fn scenes_have_mass_inside_bounds() {
        for s in all_scenes() {
            // Probe a coarse lattice: some density must exist inside bounds.
            let mut total = 0.0f64;
            let n = 12;
            for ix in 0..n {
                for iy in 0..n {
                    for iz in 0..n {
                        let u = Vec3::new(
                            (ix as f32 + 0.5) / n as f32,
                            (iy as f32 + 0.5) / n as f32,
                            (iz as f32 + 0.5) / n as f32,
                        );
                        let p = s.bounds.denormalize(u);
                        total += s.sample(p, Vec3::new(0.0, 0.0, 1.0)).sigma as f64;
                    }
                }
            }
            assert!(
                total > 1.0,
                "scene {} is nearly empty (total density {total})",
                s.name
            );
        }
    }

    #[test]
    fn scenes_differ_from_each_other() {
        // Any two scenes must disagree at some probe point — guards against
        // accidentally wiring two kinds to the same geometry.
        let scenes = all_scenes();
        let probes: Vec<Vec3> = (0..64)
            .map(|i| {
                Vec3::new(
                    -0.9 + 1.8 * ((i % 4) as f32 / 3.0),
                    -0.9 + 1.8 * (((i / 4) % 4) as f32 / 3.0),
                    -0.9 + 1.8 * ((i / 16) as f32 / 3.0),
                )
            })
            .collect();
        for i in 0..scenes.len() {
            for j in (i + 1)..scenes.len() {
                let differs = probes.iter().any(|&p| {
                    let a = scenes[i].sample(p, Vec3::new(0.0, 0.0, 1.0));
                    let b = scenes[j].sample(p, Vec3::new(0.0, 0.0, 1.0));
                    (a.sigma - b.sigma).abs() > 1e-3 || (a.color - b.color).length() > 1e-3
                });
                assert!(
                    differs,
                    "{} and {} look identical",
                    scenes[i].name, scenes[j].name
                );
            }
        }
    }

    #[test]
    fn materials_is_view_dependent() {
        let s = scene(SceneKind::Materials);
        let p = Vec3::new(-0.5 + 0.15, -0.2, -0.25);
        let a = s.sample(p, Vec3::new(-1.0, 0.0, 0.0));
        let b = s.sample(p, Vec3::new(0.0, 1.0, 0.0));
        assert!(
            (a.color - b.color).length() > 1e-3,
            "expected sheen to vary with view"
        );
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(SceneKind::Lego.to_string(), "Lego");
        assert_eq!(format!("{}", SceneKind::Ship), "Ship");
    }
}
