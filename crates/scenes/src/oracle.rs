//! Exact volume rendering of a ground-truth field.
//!
//! The oracle integrates the emission-absorption equation (paper Eq. 1) with
//! dense quadrature over the ray/bounds intersection. It plays the role of
//! the Blender path tracer that produced the Synthetic-NeRF images: the
//! "photographs" the NeRF is trained to reproduce.

use crate::field::{RadianceField, Scene};
use crate::image::Image;
use inerf_geom::{Camera, Ray, Vec3};

/// Renders the ground-truth color of `ray` through `scene` using `n` equal
/// quadrature steps over the ray/bounds overlap.
///
/// Returns black where the ray misses the scene bounds. The composite uses
/// the standard discrete approximation `alpha_i = 1 - exp(-sigma_i * dt)`,
/// identical in form to the training renderer, but with a much denser step
/// count so it serves as ground truth.
pub fn render_ray(scene: &Scene, ray: &Ray, n: usize) -> Vec3 {
    let Some(hit) = scene.bounds.intersect(ray) else {
        return Vec3::ZERO;
    };
    if hit.t_far - hit.t_near < 1e-6 {
        return Vec3::ZERO;
    }
    let dt = (hit.t_far - hit.t_near) / n as f32;
    let mut transmittance = 1.0f32;
    let mut color = Vec3::ZERO;
    for i in 0..n {
        let t = hit.t_near + dt * (i as f32 + 0.5);
        let s = scene.sample(ray.at(t), ray.direction);
        if s.sigma <= 0.0 {
            continue;
        }
        let alpha = 1.0 - (-s.sigma * dt).exp();
        color += s.color * (transmittance * alpha);
        transmittance *= 1.0 - alpha;
        if transmittance < 1e-4 {
            break;
        }
    }
    color
}

/// Renders a full ground-truth image from `camera`.
///
/// `samples_per_ray` controls quadrature density; 192+ gives oracle-grade
/// accuracy for the procedural scenes, 64 is fine for tests.
pub fn render_image(scene: &Scene, camera: &Camera, samples_per_ray: usize) -> Image {
    let mut img = Image::new(camera.width, camera.height);
    for py in 0..camera.height {
        for px in 0..camera.width {
            let ray = camera.ray_for_pixel(px, py);
            img.set(px, py, render_ray(scene, &ray, samples_per_ray));
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{Blob, Primitive};
    use crate::zoo::{scene, SceneKind};
    use inerf_geom::{Aabb, Pose};

    fn single_blob_scene() -> Scene {
        Scene::new(
            "blob",
            Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)),
            vec![Primitive::Blob(Blob {
                center: Vec3::ZERO,
                radius: 0.3,
                peak: 20.0,
                color: Vec3::new(1.0, 0.0, 0.0),
                sheen: 0.0,
            })],
        )
    }

    #[test]
    fn ray_through_blob_sees_red() {
        let s = single_blob_scene();
        let ray = Ray::new(Vec3::new(0.0, 0.0, -3.0), Vec3::new(0.0, 0.0, 1.0));
        let c = render_ray(&s, &ray, 256);
        assert!(
            c.x > 0.8,
            "dense blob should be nearly opaque red, got {c:?}"
        );
        assert!(c.y < 1e-3 && c.z < 1e-3);
    }

    #[test]
    fn ray_missing_bounds_is_black() {
        let s = single_blob_scene();
        let ray = Ray::new(Vec3::new(5.0, 5.0, -3.0), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(render_ray(&s, &ray, 64), Vec3::ZERO);
    }

    #[test]
    fn ray_through_empty_corner_is_black() {
        let s = single_blob_scene();
        let ray = Ray::new(Vec3::new(0.9, 0.9, -3.0), Vec3::new(0.0, 0.0, 1.0));
        let c = render_ray(&s, &ray, 128);
        assert!(c.length() < 1e-3);
    }

    #[test]
    fn quadrature_converges() {
        let s = single_blob_scene();
        let ray = Ray::new(Vec3::new(0.05, -0.02, -3.0), Vec3::new(0.0, 0.0, 1.0));
        let coarse = render_ray(&s, &ray, 64);
        let fine = render_ray(&s, &ray, 1024);
        assert!(
            (coarse - fine).length() < 0.02,
            "64 vs 1024 samples differ too much: {coarse:?} vs {fine:?}"
        );
    }

    #[test]
    fn image_of_lego_is_nonempty_and_bounded() {
        let s = scene(SceneKind::Lego);
        let pose = Pose::orbit(Vec3::ZERO, 3.0, 0.7, 0.5);
        let cam = Camera::new(pose, 24, 24, 0.7);
        let img = render_image(&s, &cam, 64);
        assert!(img.mean() > 0.01, "image should not be black");
        for p in img.pixels() {
            assert!(p.x >= 0.0 && p.x <= 1.0 + 1e-4);
            assert!(p.is_finite());
        }
    }
}
