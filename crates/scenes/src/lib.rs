//! Procedural volumetric scenes for the Instant-NeRF reproduction.
//!
//! The paper evaluates on the eight Synthetic-NeRF Blender scenes (chair,
//! drums, ficus, hotdog, lego, materials, mic, ship). Those assets cannot be
//! shipped here, so this crate provides the substitution documented in
//! DESIGN.md: eight *procedural emission-absorption volumes* with the same
//! names. Each scene is an analytic density + color field; ground-truth
//! images are produced by an exact (dense-quadrature) volume-rendering
//! oracle, so PSNR against a trained model is well defined.
//!
//! Contents:
//!
//! * [`field`] — the [`RadianceField`] trait and procedural primitives.
//! * [`zoo`] — the eight named scenes.
//! * [`image`] — image buffers, MSE and PSNR.
//! * [`oracle`] — exact volume rendering of a field.
//! * [`dataset`] — posed multi-view datasets (train/test splits).
//!
//! # Example
//!
//! ```
//! use inerf_scenes::{zoo, dataset::DatasetConfig};
//!
//! let scene = zoo::scene(zoo::SceneKind::Lego);
//! let ds = DatasetConfig::tiny().generate(&scene);
//! assert_eq!(ds.train_views.len(), DatasetConfig::tiny().train_views);
//! ```

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod dataset;
pub mod field;
pub mod image;
pub mod oracle;
pub mod zoo;

pub use dataset::{Dataset, DatasetConfig, View};
pub use field::{RadianceField, RadianceSample, Scene};
pub use image::{mse, psnr, psnr_from_mse, ssim, Image};
pub use zoo::SceneKind;
