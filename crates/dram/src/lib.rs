//! A cycle-level LPDDR4 DRAM timing simulator.
//!
//! Models the organization of paper Fig. 5 and the timing parameters of
//! Tab. III: channels → ranks → chips of 16 banks, each bank split into
//! subarrays with local row buffers (subarray-level parallelism, SALP
//! [Kim et al., ISCA'12]). The simulator replays a request stream and
//! reports cycles, row-buffer outcomes, bank conflicts and energy.
//!
//! The model is deliberately Ramulator-like in scope (per-command timing
//! constraints enforced at the bank/rank level) while remaining deterministic
//! and dependency-free; see DESIGN.md for the substitution rationale.
//!
//! # Example
//!
//! ```
//! use inerf_dram::{DramConfig, DramSim, Request, AccessKind};
//!
//! let config = DramConfig::paper(8); // 8 subarrays per bank
//! let mut sim = DramSim::new(config);
//! let addr = config.address(0, 0, 0, 42, 0); // channel, bank, subarray, row, col
//! let stats = sim.run(&[Request::new(addr, AccessKind::Read)]);
//! assert_eq!(stats.row_misses, 1); // first touch always opens the row
//! ```

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod address;
pub mod bank;
pub mod config;
pub mod energy;
pub mod request;
pub mod sim;
pub mod stats;

pub use address::PhysAddr;
pub use config::{DramConfig, Timing};
pub use energy::EnergyModel;
pub use request::{AccessKind, Request};
pub use sim::DramSim;
pub use stats::SimStats;
