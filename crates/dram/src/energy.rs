//! DRAM energy model.
//!
//! Per-command energies representative of LPDDR4 at 1.1 V (derived from the
//! device class of Oh et al., JSSC'15, reference \[18\] of the paper).
//! Absolute joules are not the reproduction target — *relative* energy
//! between the GPU baseline and the NMP design is — so representative
//! constants suffice; see DESIGN.md.

use crate::stats::SimStats;
use serde::{Deserialize, Serialize};

/// Energy cost per command type, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// One ACT (row open into local row buffer).
    pub act_pj: f64,
    /// One PRE.
    pub pre_pj: f64,
    /// One read burst (32 B at the bank).
    pub read_pj: f64,
    /// One write burst.
    pub write_pj: f64,
    /// Extra energy when data crosses the channel I/O bus, per burst.
    pub io_pj: f64,
    /// Background power per bank in milliwatts (standby + refresh share).
    pub background_mw_per_bank: f64,
}

impl EnergyModel {
    /// Representative LPDDR4 energies.
    pub const fn lpddr4() -> Self {
        EnergyModel {
            act_pj: 900.0,
            pre_pj: 350.0,
            read_pj: 150.0,
            write_pj: 160.0,
            io_pj: 250.0,
            background_mw_per_bank: 1.5,
        }
    }

    /// Total energy of a finished simulation, in picojoules.
    ///
    /// `banks` and `cycle_seconds` provide the background term;
    /// `io_bursts` is the number of bursts that crossed the channel bus.
    pub fn total_pj(
        &self,
        stats: &SimStats,
        io_bursts: u64,
        banks: u32,
        cycle_seconds: f64,
    ) -> f64 {
        let dynamic = stats.acts as f64 * self.act_pj
            + stats.pres as f64 * self.pre_pj
            + stats.reads as f64 * self.read_pj
            + stats.writes as f64 * self.write_pj
            + io_bursts as f64 * self.io_pj;
        let seconds = stats.total_cycles as f64 * cycle_seconds;
        // mW * s = mJ = 1e9 pJ.
        let background = self.background_mw_per_bank * banks as f64 * seconds * 1e9;
        dynamic + background
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_energy_scales_with_commands() {
        let e = EnergyModel::lpddr4();
        let s1 = SimStats {
            acts: 10,
            pres: 10,
            reads: 100,
            ..Default::default()
        };
        let s2 = SimStats {
            acts: 20,
            pres: 20,
            reads: 200,
            ..Default::default()
        };
        let e1 = e.total_pj(&s1, 0, 1, 0.0);
        let e2 = e.total_pj(&s2, 0, 1, 0.0);
        assert!((e2 - 2.0 * e1).abs() < 1e-6);
    }

    #[test]
    fn io_crossing_costs_extra() {
        let e = EnergyModel::lpddr4();
        let s = SimStats {
            reads: 100,
            ..Default::default()
        };
        let local = e.total_pj(&s, 0, 1, 0.0);
        let host = e.total_pj(&s, 100, 1, 0.0);
        assert!(host > local);
        assert!((host - local - 100.0 * e.io_pj).abs() < 1e-6);
    }

    #[test]
    fn background_scales_with_time_and_banks() {
        let e = EnergyModel::lpddr4();
        let s = SimStats {
            total_cycles: 1_000_000,
            ..Default::default()
        };
        let one = e.total_pj(&s, 0, 1, 1e-9);
        let many = e.total_pj(&s, 0, 128, 1e-9);
        assert!((many / one - 128.0).abs() < 1e-9);
    }
}
