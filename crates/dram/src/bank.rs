//! Per-bank (and per-subarray) timing state machines.

use crate::config::{DramConfig, Timing};
use serde::{Deserialize, Serialize};

/// The DRAM commands the simulator issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommandKind {
    /// Activate a row into a subarray's local row buffer.
    Act,
    /// Precharge (close) a subarray's open row.
    Pre,
    /// Column read burst.
    Read,
    /// Column write burst.
    Write,
}

/// One issued command, for legality checking and energy accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandRecord {
    /// Issue cycle.
    pub cycle: u64,
    /// Command type.
    pub kind: CommandKind,
    /// Global bank id.
    pub bank: u32,
    /// Subarray within the bank.
    pub subarray: u32,
    /// Row (for ACT) or 0.
    pub row: u32,
}

/// How a request was served by the row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// The row was already open in the target subarray.
    Hit,
    /// The subarray was idle; a plain ACT sufficed.
    Miss,
    /// A different row was open in the target subarray; PRE + ACT required
    /// (the paper's "bank conflict").
    Conflict,
}

#[derive(Debug, Clone)]
struct SubarrayState {
    open_row: Option<u32>,
    /// Cycle of the last ACT (for tRAS).
    act_at: u64,
    /// Earliest cycle the subarray may accept its next ACT.
    ready_at: u64,
    /// Completion time of the last write burst into this subarray's row
    /// buffer (for tWR before its PRE).
    last_write_end: u64,
}

/// Timing state of one bank with `n` subarrays.
#[derive(Debug, Clone)]
pub struct BankTimeline {
    subarrays: Vec<SubarrayState>,
    /// Earliest cycle the bank's column path accepts the next RD/WR.
    pub col_ready: u64,
}

impl BankTimeline {
    /// Creates an idle bank.
    pub fn new(subarrays: u32) -> Self {
        BankTimeline {
            subarrays: (0..subarrays)
                .map(|_| SubarrayState {
                    open_row: None,
                    act_at: 0,
                    ready_at: 0,
                    last_write_end: 0,
                })
                .collect(),
            col_ready: 0,
        }
    }

    /// Returns the bank to its idle state without reallocating the
    /// subarray vector — the incremental-simulation reuse path.
    pub fn reset(&mut self) {
        for sa in &mut self.subarrays {
            *sa = SubarrayState {
                open_row: None,
                act_at: 0,
                ready_at: 0,
                last_write_end: 0,
            };
        }
        self.col_ready = 0;
    }

    /// Classifies how serving `row` in `subarray` will interact with the row
    /// buffer, without mutating state.
    pub fn classify(&self, subarray: u32, row: u32) -> RowOutcome {
        match self.subarrays[subarray as usize].open_row {
            Some(open) if open == row => RowOutcome::Hit,
            Some(_) => RowOutcome::Conflict,
            None => RowOutcome::Miss,
        }
    }

    /// Serves one request; returns `(outcome, act_issue_cycle_if_any,
    /// pre_issue_cycle_if_any, column_issue_cycle, data_complete_cycle)`.
    ///
    /// `earliest` is the first cycle any command may issue (request arrival);
    /// `rank_act_ok` is the earliest cycle an ACT may issue under the
    /// rank-level tRRD/tFAW constraints (computed by the caller).
    #[allow(clippy::too_many_arguments)]
    pub fn serve(
        &mut self,
        subarray: u32,
        row: u32,
        is_write: bool,
        earliest: u64,
        rank_act_ok: u64,
        timing: &Timing,
        config: &DramConfig,
    ) -> ServedRequest {
        let outcome = self.classify(subarray, row);
        let sa = &mut self.subarrays[subarray as usize];
        let mut pre_at = None;
        let mut act_at = None;
        let mut stalled = false;
        let col_at;
        match outcome {
            RowOutcome::Hit => {
                col_at = earliest.max(self.col_ready).max(sa.act_at + timing.rcd);
            }
            RowOutcome::Miss => {
                let t_act = earliest.max(sa.ready_at).max(rank_act_ok);
                act_at = Some(t_act);
                sa.act_at = t_act;
                sa.ready_at = t_act + timing.ras; // earliest PRE
                sa.open_row = Some(row);
                col_at = (t_act + timing.rcd).max(self.col_ready);
            }
            RowOutcome::Conflict => {
                // Close the open row first: PRE must respect tRAS since the
                // victim's ACT and tWR after the last write burst. The
                // request *stalls* only if those windows are still open when
                // it arrives — with enough subarrays the victim row is long
                // quiescent and the turnaround hides completely.
                let t_pre = earliest
                    .max(sa.act_at + timing.ras)
                    .max(sa.last_write_end + timing.wr);
                stalled = t_pre > earliest;
                pre_at = Some(t_pre);
                let t_act = (t_pre + timing.rp).max(rank_act_ok);
                act_at = Some(t_act);
                sa.act_at = t_act;
                sa.ready_at = t_act + timing.ras;
                sa.open_row = Some(row);
                col_at = (t_act + timing.rcd).max(self.col_ready);
            }
        }
        self.col_ready = col_at + timing.ccd;
        let data_done = if is_write {
            let done = col_at + timing.wa + config.burst_cycles;
            self.subarrays[subarray as usize].last_write_end = done;
            done
        } else {
            col_at + timing.cl + config.burst_cycles
        };
        ServedRequest {
            outcome,
            stalled,
            pre_at,
            act_at,
            col_at,
            data_done,
        }
    }
}

/// The timing outcome of serving one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedRequest {
    /// Row-buffer outcome.
    pub outcome: RowOutcome,
    /// Whether a conflict actually serialized the request (it arrived while
    /// the victim row's tRAS/tWR windows were still open) — the quantity
    /// Fig. 9 counts. Always false for hits and misses.
    pub stalled: bool,
    /// PRE issue cycle, if a conflict forced one.
    pub pre_at: Option<u64>,
    /// ACT issue cycle, if the row had to be opened.
    pub act_at: Option<u64>,
    /// Column command issue cycle.
    pub col_at: u64,
    /// Cycle the data burst completes.
    pub data_done: u64,
}

/// Rank-level ACT bookkeeping (tRRD spacing and the four-activate window).
#[derive(Debug, Clone, Default)]
pub struct RankActTracker {
    last_act: Option<u64>,
    recent_acts: Vec<u64>, // up to 4, sorted ascending
}

impl RankActTracker {
    /// Creates an idle tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the tracker to idle, keeping the ACT-window allocation.
    pub fn reset(&mut self) {
        self.last_act = None;
        self.recent_acts.clear();
    }

    /// Earliest cycle a new ACT may issue.
    pub fn earliest(&self, timing: &Timing) -> u64 {
        let mut t = self.last_act.map_or(0, |a| a + timing.rrd);
        if self.recent_acts.len() == 4 {
            t = t.max(self.recent_acts[0] + timing.faw);
        }
        t
    }

    /// Records an issued ACT.
    pub fn record(&mut self, cycle: u64) {
        self.last_act = Some(cycle);
        self.recent_acts.push(cycle);
        if self.recent_acts.len() > 4 {
            self.recent_acts.remove(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (BankTimeline, Timing, DramConfig) {
        let cfg = DramConfig::paper(4);
        (BankTimeline::new(4), cfg.timing, cfg)
    }

    #[test]
    fn first_access_is_miss_then_hit() {
        let (mut bank, t, cfg) = setup();
        let r1 = bank.serve(0, 10, false, 0, 0, &t, &cfg);
        assert_eq!(r1.outcome, RowOutcome::Miss);
        assert_eq!(r1.act_at, Some(0));
        assert_eq!(r1.col_at, t.rcd);
        assert_eq!(r1.data_done, t.rcd + t.cl + cfg.burst_cycles);
        let r2 = bank.serve(0, 10, false, 0, 0, &t, &cfg);
        assert_eq!(r2.outcome, RowOutcome::Hit);
        assert!(r2.act_at.is_none());
        // Hit issues as soon as the column path frees (tCCD after the first).
        assert_eq!(r2.col_at, r1.col_at + t.ccd);
    }

    #[test]
    fn conflict_pays_pre_plus_act() {
        let (mut bank, t, cfg) = setup();
        bank.serve(0, 10, false, 0, 0, &t, &cfg);
        let r = bank.serve(0, 20, false, 0, 0, &t, &cfg);
        assert_eq!(r.outcome, RowOutcome::Conflict);
        let pre = r.pre_at.expect("conflict must precharge");
        let act = r.act_at.expect("conflict must activate");
        assert!(pre >= t.ras, "PRE must respect tRAS");
        assert!(act >= pre + t.rp, "ACT must respect tRP");
        assert!(r.col_at >= act + t.rcd);
    }

    #[test]
    fn salp_different_subarray_avoids_conflict() {
        let (mut bank, t, cfg) = setup();
        bank.serve(0, 10, false, 0, 0, &t, &cfg);
        // Same bank, different subarray, different row: plain miss, no PRE.
        let r = bank.serve(1, 20, false, 0, 0, &t, &cfg);
        assert_eq!(r.outcome, RowOutcome::Miss);
        assert!(r.pre_at.is_none());
    }

    #[test]
    fn salp_conflict_faster_than_single_subarray() {
        // The quantitative SALP benefit: alternating rows hit PRE+ACT every
        // time with one subarray, but become independent misses with two.
        let cfg1 = DramConfig::paper(1);
        let cfg2 = DramConfig::paper(2);
        let t = cfg1.timing;
        let mut one = BankTimeline::new(1);
        let mut two = BankTimeline::new(2);
        let mut done_one = 0;
        let mut done_two = 0;
        for i in 0..8u32 {
            let row = i % 2;
            done_one = one.serve(0, row, false, 0, 0, &t, &cfg1).data_done;
            done_two = two.serve(row % 2, row, false, 0, 0, &t, &cfg2).data_done;
        }
        assert!(
            done_two < done_one,
            "SALP should finish earlier: {done_two} vs {done_one}"
        );
    }

    #[test]
    fn write_then_conflict_waits_for_twr() {
        let (mut bank, t, cfg) = setup();
        let w = bank.serve(0, 10, true, 0, 0, &t, &cfg);
        let r = bank.serve(0, 20, false, 0, 0, &t, &cfg);
        assert!(
            r.pre_at.expect("conflict") >= w.data_done + t.wr,
            "PRE after write must respect tWR"
        );
    }

    #[test]
    fn rank_tracker_enforces_rrd_and_faw() {
        let t = Timing::lpddr4_2400();
        let mut tr = RankActTracker::new();
        assert_eq!(tr.earliest(&t), 0);
        tr.record(0);
        assert_eq!(tr.earliest(&t), t.rrd);
        tr.record(t.rrd);
        tr.record(2 * t.rrd);
        tr.record(3 * t.rrd);
        // Four ACTs recorded: the fifth must wait for the FAW window.
        assert!(tr.earliest(&t) >= t.faw);
    }

    #[test]
    fn arrival_time_respected() {
        let (mut bank, t, cfg) = setup();
        let r = bank.serve(0, 5, false, 100, 0, &t, &cfg);
        assert_eq!(r.act_at, Some(100));
        assert_eq!(r.col_at, 100 + t.rcd);
    }
}
