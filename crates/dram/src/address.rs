//! Physical DRAM addresses.

use serde::{Deserialize, Serialize};

/// A decoded physical address: channel / bank / subarray / row / column.
///
/// The mapping from application addresses (hash-table level + entry) to
/// `PhysAddr` lives in the accelerator crate, because the paper's mapping
/// scheme (Sec. IV-B) is part of the co-design, not of the DRAM itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhysAddr {
    /// Channel index.
    pub channel: u32,
    /// Bank index within the channel.
    pub bank: u32,
    /// Subarray index within the bank.
    pub subarray: u32,
    /// Row index within the subarray.
    pub row: u32,
    /// Byte column within the row.
    pub col: u32,
}

impl PhysAddr {
    /// A flattened global bank identifier (`channel * banks + bank`); used
    /// for per-bank bookkeeping.
    pub fn global_bank(&self, banks_per_channel: u32) -> u32 {
        self.channel * banks_per_channel + self.bank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_bank_flattening() {
        let a = PhysAddr {
            channel: 2,
            bank: 5,
            subarray: 0,
            row: 0,
            col: 0,
        };
        assert_eq!(a.global_bank(16), 37);
        let b = PhysAddr {
            channel: 0,
            bank: 0,
            subarray: 0,
            row: 0,
            col: 0,
        };
        assert_eq!(b.global_bank(16), 0);
    }
}
