//! Simulation statistics.

use serde::{Deserialize, Serialize};

/// Aggregate results of replaying a request stream.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Requests served.
    pub requests: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row misses (ACT into an idle subarray).
    pub row_misses: u64,
    /// Bank conflicts (PRE + ACT because a different row was open in the
    /// target subarray) — the Fig. 9 metric.
    pub bank_conflicts: u64,
    /// Makespan: cycle at which the last data burst completed.
    pub total_cycles: u64,
    /// ACT commands issued.
    pub acts: u64,
    /// PRE commands issued.
    pub pres: u64,
    /// Read bursts issued.
    pub reads: u64,
    /// Write bursts issued.
    pub writes: u64,
    /// Total energy in picojoules.
    pub energy_pj: f64,
}

impl SimStats {
    /// Row-hit rate over all requests.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.requests as f64
        }
    }

    /// Conflict rate over all requests.
    pub fn conflict_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.bank_conflicts as f64 / self.requests as f64
        }
    }

    /// Wall-clock seconds at the given cycle time.
    pub fn seconds(&self, cycle_seconds: f64) -> f64 {
        self.total_cycles as f64 * cycle_seconds
    }

    /// Delivered bandwidth in bytes/second, given bytes actually transferred.
    pub fn bandwidth(&self, bytes: u64, cycle_seconds: f64) -> f64 {
        let s = self.seconds(cycle_seconds);
        if s == 0.0 {
            0.0
        } else {
            bytes as f64 / s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = SimStats {
            requests: 10,
            row_hits: 6,
            bank_conflicts: 2,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.6).abs() < 1e-12);
        assert!((s.conflict_rate() - 0.2).abs() < 1e-12);
        assert_eq!(SimStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn bandwidth_math() {
        let s = SimStats {
            total_cycles: 1000,
            ..Default::default()
        };
        // 1000 cycles at 1 ns = 1 us; 1024 bytes → ~1 GB/s.
        let bw = s.bandwidth(1024, 1e-9);
        assert!((bw - 1.024e9).abs() < 1.0);
    }
}
