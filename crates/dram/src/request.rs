//! Memory requests.

use crate::address::PhysAddr;
use serde::{Deserialize, Serialize};

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A read burst.
    Read,
    /// A write burst.
    Write,
}

/// One row-granularity memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Target address.
    pub addr: PhysAddr,
    /// Read or write.
    pub kind: AccessKind,
    /// Earliest cycle the request may issue (0 = immediately).
    pub arrival: u64,
}

impl Request {
    /// Creates a request that may issue immediately.
    pub fn new(addr: PhysAddr, kind: AccessKind) -> Self {
        Request {
            addr,
            kind,
            arrival: 0,
        }
    }

    /// Creates a request arriving at `cycle`.
    pub fn at(addr: PhysAddr, kind: AccessKind, cycle: u64) -> Self {
        Request {
            addr,
            kind,
            arrival: cycle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let a = PhysAddr {
            channel: 0,
            bank: 1,
            subarray: 2,
            row: 3,
            col: 4,
        };
        assert_eq!(Request::new(a, AccessKind::Read).arrival, 0);
        assert_eq!(Request::at(a, AccessKind::Write, 99).arrival, 99);
    }
}
