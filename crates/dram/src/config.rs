//! DRAM organization and timing configuration (paper Tab. III).

use crate::address::PhysAddr;
use serde::{Deserialize, Serialize};

/// Timing constraints in DRAM command-clock cycles.
///
/// Values follow Tab. III of the paper (LPDDR4-2400):
/// `tCL-tRCD-tRPpb = 4-4-6`, `tRAS = 9`, `tCCD = 8`, `tRRD = 2`, `tFAW = 9`,
/// `tWR = 6`, `tRA = 2`, `tWA = 7`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timing {
    /// CAS (read) latency.
    pub cl: u64,
    /// ACT → RD/WR delay.
    pub rcd: u64,
    /// Per-bank precharge latency.
    pub rp: u64,
    /// Minimum row-open time (ACT → PRE).
    pub ras: u64,
    /// Column-to-column delay (back-to-back bursts on one bank).
    pub ccd: u64,
    /// ACT → ACT to different banks of the same rank.
    pub rrd: u64,
    /// Four-activate window.
    pub faw: u64,
    /// Write recovery (last write data → PRE).
    pub wr: u64,
    /// Read-to-any-command turnaround.
    pub ra: u64,
    /// Write-to-any-command turnaround.
    pub wa: u64,
}

impl Timing {
    /// Tab. III LPDDR4-2400 timing set.
    pub const fn lpddr4_2400() -> Self {
        Timing {
            cl: 4,
            rcd: 4,
            rp: 6,
            ras: 9,
            ccd: 8,
            rrd: 2,
            faw: 9,
            wr: 6,
            ra: 2,
            wa: 7,
        }
    }
}

/// Full DRAM organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Independent channels.
    pub channels: u32,
    /// Banks per chip (LPDDR4: 16 physical banks).
    pub banks_per_channel: u32,
    /// Subarrays per bank (the Fig. 9 sweep parameter: 1–64).
    pub subarrays_per_bank: u32,
    /// Rows per subarray.
    pub rows_per_subarray: u32,
    /// Row-buffer (page) size in bytes.
    pub row_bytes: u32,
    /// Timing constraints.
    pub timing: Timing,
    /// Command-clock frequency in MHz (LPDDR4-2400: 1200 MHz clock).
    pub clock_mhz: u32,
    /// Whether request data crosses the shared channel I/O bus (true for a
    /// host processor; false for near-bank NMP compute, which consumes data
    /// locally at the bank).
    pub use_channel_bus: bool,
    /// Data-bus burst occupancy in cycles (BL16 on a 16-bit channel).
    pub burst_cycles: u64,
}

impl DramConfig {
    /// The paper's configuration: 8 channels, 16 banks/channel, 1 KB rows,
    /// LPDDR4-2400 timing, with `subarrays` per bank.
    ///
    /// # Panics
    ///
    /// Panics if `subarrays` is 0 or not a power of two.
    pub fn paper(subarrays: u32) -> Self {
        assert!(
            subarrays > 0 && subarrays.is_power_of_two(),
            "subarrays must be a power of two"
        );
        DramConfig {
            channels: 8,
            banks_per_channel: 16,
            subarrays_per_bank: subarrays,
            // 16 GB total / (8 ch × 16 banks) = 128 MB per bank.
            rows_per_subarray: (128 * 1024) / subarrays, // 128 MB / 1 KB rows
            row_bytes: 1024,
            timing: Timing::lpddr4_2400(),
            clock_mhz: 1200,
            use_channel_bus: false,
            burst_cycles: 8,
        }
    }

    /// A host-style configuration where data crosses the channel bus.
    pub fn paper_host(subarrays: u32) -> Self {
        DramConfig {
            use_channel_bus: true,
            ..Self::paper(subarrays)
        }
    }

    /// Total banks across all channels.
    pub const fn total_banks(&self) -> u32 {
        self.channels * self.banks_per_channel
    }

    /// Per-bank capacity in bytes.
    pub const fn bank_bytes(&self) -> u64 {
        self.subarrays_per_bank as u64 * self.rows_per_subarray as u64 * self.row_bytes as u64
    }

    /// Builds a physical address from components.
    ///
    /// # Panics
    ///
    /// Panics if any component exceeds the configured organization.
    pub fn address(&self, channel: u32, bank: u32, subarray: u32, row: u32, col: u32) -> PhysAddr {
        assert!(channel < self.channels, "channel {channel} out of range");
        assert!(bank < self.banks_per_channel, "bank {bank} out of range");
        assert!(
            subarray < self.subarrays_per_bank,
            "subarray {subarray} out of range"
        );
        assert!(row < self.rows_per_subarray, "row {row} out of range");
        assert!(col < self.row_bytes, "column {col} out of range");
        PhysAddr {
            channel,
            bank,
            subarray,
            row,
            col,
        }
    }

    /// Seconds per command-clock cycle.
    pub fn cycle_seconds(&self) -> f64 {
        1.0 / (self.clock_mhz as f64 * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_timing_values() {
        let t = Timing::lpddr4_2400();
        assert_eq!((t.cl, t.rcd, t.rp), (4, 4, 6));
        assert_eq!(t.ras, 9);
        assert_eq!(t.ccd, 8);
        assert_eq!(t.faw, 9);
    }

    #[test]
    fn paper_capacity_is_16gb() {
        let c = DramConfig::paper(8);
        let total = c.bank_bytes() * c.total_banks() as u64;
        assert_eq!(total, 16 * 1024 * 1024 * 1024, "Tab. III says 16 GB total");
    }

    #[test]
    fn bank_capacity_independent_of_subarrays() {
        for s in [1u32, 2, 4, 8, 16, 32, 64] {
            let c = DramConfig::paper(s);
            assert_eq!(
                c.bank_bytes(),
                128 * 1024 * 1024,
                "128 MB per bank at {s} subarrays"
            );
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_subarrays_rejected() {
        let _ = DramConfig::paper(3);
    }

    #[test]
    fn address_validation() {
        let c = DramConfig::paper(4);
        let a = c.address(7, 15, 3, 100, 1023);
        assert_eq!(a.channel, 7);
        assert_eq!(a.col, 1023);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_address_panics() {
        let c = DramConfig::paper(4);
        let _ = c.address(8, 0, 0, 0, 0);
    }

    #[test]
    fn cycle_time_matches_clock() {
        let c = DramConfig::paper(1);
        assert!((c.cycle_seconds() - 1.0 / 1.2e9).abs() < 1e-15);
    }
}
