//! The request-stream simulator.

use crate::bank::{BankTimeline, CommandKind, CommandRecord, RankActTracker, RowOutcome};
use crate::config::DramConfig;
use crate::energy::EnergyModel;
use crate::request::{AccessKind, Request};
use crate::stats::SimStats;

/// Replays request streams against the configured DRAM, bank by bank, and
/// aggregates timing/energy statistics.
///
/// Requests to the same bank are served in order (FCFS per bank — the
/// accelerator's deterministic streaming makes reordering unnecessary);
/// different banks and channels proceed in parallel subject to the rank
/// ACT constraints (tRRD, tFAW) and, optionally, the shared channel data
/// bus.
///
/// # Incremental frontend
///
/// Besides the batch-replay [`DramSim::run`], the simulator exposes an
/// online frontend for co-simulation: [`DramSim::push_request`] serves one
/// request and folds it into the running statistics, [`DramSim::tick`]
/// advances the arrival clock streamed requests inherit, and
/// [`DramSim::drain_stats`] finalizes the accumulated statistics and
/// returns the simulator to idle *in place* — bank state is cleared, never
/// reallocated, so per-iteration co-simulation costs no allocation. `run`
/// is literally `push_request` over the slice followed by `drain_stats`,
/// which is what makes the streamed and batch paths bit-identical.
#[derive(Debug, Clone)]
pub struct DramSim {
    config: DramConfig,
    energy: EnergyModel,
    banks: Vec<BankTimeline>,
    rank_acts: Vec<RankActTracker>,
    channel_bus_free: Vec<u64>,
    log: Vec<CommandRecord>,
    keep_log: bool,
    /// Running statistics since the last drain.
    stats: SimStats,
    /// Latest data-burst completion cycle since the last drain.
    makespan: u64,
    /// Channel-bus bursts since the last drain (energy accounting).
    io_bursts: u64,
    /// Arrival clock for streamed requests (advanced by [`DramSim::tick`]).
    now: u64,
}

impl DramSim {
    /// Creates a simulator with the default LPDDR4 energy model.
    pub fn new(config: DramConfig) -> Self {
        DramSim {
            banks: (0..config.total_banks())
                .map(|_| BankTimeline::new(config.subarrays_per_bank))
                .collect(),
            rank_acts: (0..config.channels)
                .map(|_| RankActTracker::new())
                .collect(),
            channel_bus_free: vec![0; config.channels as usize],
            energy: EnergyModel::lpddr4(),
            config,
            log: Vec::new(),
            keep_log: false,
            stats: SimStats::default(),
            makespan: 0,
            io_bursts: 0,
            now: 0,
        }
    }

    /// Enables the per-command log (used by protocol-legality tests).
    pub fn with_command_log(mut self) -> Self {
        self.keep_log = true;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// The issued-command log (empty unless [`DramSim::with_command_log`]).
    /// Unlike the timing state, the log survives [`DramSim::drain_stats`]
    /// (it is a diagnostic artifact); [`DramSim::reset`] clears it.
    pub fn command_log(&self) -> &[CommandRecord] {
        &self.log
    }

    /// The current arrival clock of the streaming frontend.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances the arrival clock: requests subsequently pushed via
    /// [`DramSim::push_request`] arrive no earlier than the clock. Models a
    /// request source with a known issue cadence (e.g. the 32-point-parallel
    /// front end's tFAW-limited ~3-cycle spacing).
    pub fn tick(&mut self, cycles: u64) {
        self.now += cycles;
    }

    /// Resets all bank/bus/statistics state *in place* (keeps configuration
    /// and allocations; clears the command log).
    pub fn reset(&mut self) {
        self.reset_timing();
        self.log.clear();
    }

    /// Clears timing/statistics state but preserves the command log.
    fn reset_timing(&mut self) {
        for b in &mut self.banks {
            b.reset();
        }
        for r in &mut self.rank_acts {
            r.reset();
        }
        self.channel_bus_free.fill(0);
        self.stats = SimStats::default();
        self.makespan = 0;
        self.io_bursts = 0;
        self.now = 0;
    }

    /// Approximate heap bytes of the simulator's mutable state — the
    /// constant-memory footprint of the online co-simulation path.
    pub fn state_bytes(&self) -> usize {
        self.banks.capacity() * std::mem::size_of::<BankTimeline>()
            + self.banks.len()
                * self.config.subarrays_per_bank as usize
                * std::mem::size_of::<u64>()
                // inerf-lint: allow(entry-width) -- 4 = u64 timeline registers per subarray, not an entry width
                * 4
            + self.rank_acts.capacity() * std::mem::size_of::<RankActTracker>()
            + self.channel_bus_free.capacity() * std::mem::size_of::<u64>()
            + self.log.capacity() * std::mem::size_of::<CommandRecord>()
    }

    /// Serves one request online, folding it into the running statistics.
    /// The effective arrival is the later of the request's own arrival and
    /// the streaming clock (see [`DramSim::tick`]).
    ///
    /// # Panics
    ///
    /// Panics if the address lies outside the configured organization.
    pub fn push_request(&mut self, req: &Request) {
        let a = req.addr;
        assert!(
            a.channel < self.config.channels,
            "address channel out of range"
        );
        assert!(
            a.bank < self.config.banks_per_channel,
            "address bank out of range"
        );
        assert!(
            a.subarray < self.config.subarrays_per_bank,
            "address subarray out of range"
        );
        self.stats.requests += 1;
        let gb = a.global_bank(self.config.banks_per_channel) as usize;
        let rank_ok = self.rank_acts[a.channel as usize].earliest(&self.config.timing);
        let is_write = req.kind == AccessKind::Write;
        let served = self.banks[gb].serve(
            a.subarray,
            a.row,
            is_write,
            req.arrival.max(self.now),
            rank_ok,
            &self.config.timing,
            &self.config,
        );
        match served.outcome {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::Miss => self.stats.row_misses += 1,
            // A conflict that did not stall behaves like a miss whose
            // precharge was hidden in idle time; Fig. 9 counts stalls.
            RowOutcome::Conflict if served.stalled => self.stats.bank_conflicts += 1,
            RowOutcome::Conflict => self.stats.row_misses += 1,
        }
        if let Some(t) = served.pre_at {
            self.stats.pres += 1;
            self.record(t, CommandKind::Pre, gb as u32, a.subarray, 0);
        }
        if let Some(t) = served.act_at {
            self.stats.acts += 1;
            self.rank_acts[a.channel as usize].record(t);
            self.record(t, CommandKind::Act, gb as u32, a.subarray, a.row);
        }
        if is_write {
            self.stats.writes += 1;
            self.record(
                served.col_at,
                CommandKind::Write,
                gb as u32,
                a.subarray,
                a.row,
            );
        } else {
            self.stats.reads += 1;
            self.record(
                served.col_at,
                CommandKind::Read,
                gb as u32,
                a.subarray,
                a.row,
            );
        }
        let mut done = served.data_done;
        if self.config.use_channel_bus {
            // Data must also cross the shared channel I/O bus.
            let bus = &mut self.channel_bus_free[a.channel as usize];
            let start = done.max(*bus);
            *bus = start + self.config.burst_cycles;
            done = start + self.config.burst_cycles;
            self.io_bursts += 1;
        }
        self.makespan = self.makespan.max(done);
    }

    /// Finalizes and returns the statistics accumulated since the last
    /// drain, then resets the timing state in place (no reallocation; the
    /// command log is preserved). The simulator is immediately ready for
    /// the next stream — e.g. the next training iteration.
    pub fn drain_stats(&mut self) -> SimStats {
        let mut stats = std::mem::take(&mut self.stats);
        stats.total_cycles = self.makespan;
        stats.energy_pj = self.energy.total_pj(
            &stats,
            self.io_bursts,
            self.config.total_banks(),
            self.config.cycle_seconds(),
        );
        self.reset_timing();
        stats
    }

    /// Replays `requests` and returns aggregate statistics. Equivalent to
    /// [`DramSim::push_request`] over the slice followed by
    /// [`DramSim::drain_stats`]; the simulator is left reset, ready for the
    /// next stream.
    ///
    /// # Panics
    ///
    /// Panics if any address lies outside the configured organization.
    pub fn run(&mut self, requests: &[Request]) -> SimStats {
        for req in requests {
            self.push_request(req);
        }
        self.drain_stats()
    }

    fn record(&mut self, cycle: u64, kind: CommandKind, bank: u32, subarray: u32, row: u32) {
        if self.keep_log {
            self.log.push(CommandRecord {
                cycle,
                kind,
                bank,
                subarray,
                row,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn req(cfg: &DramConfig, ch: u32, bank: u32, sa: u32, row: u32) -> Request {
        Request::new(cfg.address(ch, bank, sa, row, 0), AccessKind::Read)
    }

    #[test]
    fn sequential_same_row_hits() {
        let cfg = DramConfig::paper(8);
        let mut sim = DramSim::new(cfg);
        let reqs: Vec<Request> = (0..10).map(|_| req(&cfg, 0, 0, 0, 7)).collect();
        let stats = sim.run(&reqs);
        assert_eq!(stats.row_misses, 1);
        assert_eq!(stats.row_hits, 9);
        assert_eq!(stats.bank_conflicts, 0);
    }

    #[test]
    fn alternating_rows_conflict_without_salp() {
        let cfg = DramConfig::paper(1);
        let mut sim = DramSim::new(cfg);
        let reqs: Vec<Request> = (0..10).map(|i| req(&cfg, 0, 0, 0, i % 2)).collect();
        let stats = sim.run(&reqs);
        assert_eq!(stats.row_misses, 1);
        assert_eq!(stats.bank_conflicts, 9);
    }

    #[test]
    fn salp_eliminates_alternating_conflicts() {
        let cfg = DramConfig::paper(2);
        let mut sim = DramSim::new(cfg);
        // Same alternation, but the mapping spreads rows over 2 subarrays.
        let reqs: Vec<Request> = (0..10).map(|i| req(&cfg, 0, 0, i % 2, i % 2)).collect();
        let stats = sim.run(&reqs);
        assert_eq!(stats.bank_conflicts, 0);
        assert_eq!(stats.row_misses, 2);
        assert_eq!(stats.row_hits, 8);
    }

    #[test]
    fn more_banks_reduce_makespan() {
        let cfg = DramConfig::paper(8);
        let mut sim = DramSim::new(cfg);
        // 64 requests all to one bank...
        let serial: Vec<Request> = (0..64).map(|i| req(&cfg, 0, 0, 0, i)).collect();
        let t_serial = sim.run(&serial).total_cycles;
        sim.reset();
        // ...vs spread over 16 banks.
        let parallel: Vec<Request> = (0..64).map(|i| req(&cfg, 0, i % 16, 0, i)).collect();
        let t_parallel = sim.run(&parallel).total_cycles;
        assert!(
            t_parallel < t_serial / 2,
            "bank parallelism should help: {t_parallel} vs {t_serial}"
        );
    }

    #[test]
    fn channel_bus_serializes_host_traffic() {
        let near = DramConfig::paper(8);
        let host = DramConfig::paper_host(8);
        let reqs: Vec<Request> = (0..64).map(|i| req(&near, 0, i % 16, 0, 3)).collect();
        let t_near = DramSim::new(near).run(&reqs).total_cycles;
        let reqs_host: Vec<Request> = (0..64).map(|i| req(&host, 0, i % 16, 0, 3)).collect();
        let t_host = DramSim::new(host).run(&reqs_host).total_cycles;
        assert!(
            t_host > t_near,
            "host bus contention must slow things: {t_host} vs {t_near}"
        );
    }

    #[test]
    fn energy_increases_with_conflicts() {
        let cfg = DramConfig::paper(1);
        let mut sim = DramSim::new(cfg);
        let hits: Vec<Request> = (0..32).map(|_| req(&cfg, 0, 0, 0, 1)).collect();
        let e_hits = sim.run(&hits).energy_pj;
        sim.reset();
        let conflicts: Vec<Request> = (0..32).map(|i| req(&cfg, 0, 0, 0, i % 2)).collect();
        let e_conf = sim.run(&conflicts).energy_pj;
        assert!(
            e_conf > e_hits,
            "conflicts burn ACT/PRE energy: {e_conf} vs {e_hits}"
        );
    }

    #[test]
    fn incremental_push_drain_matches_run_bitwise() {
        let cfg = DramConfig::paper(4);
        let mut rng = SmallRng::seed_from_u64(17);
        let reqs: Vec<Request> = (0..300)
            .map(|_| {
                let kind = if rng.gen_bool(0.25) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                Request::new(
                    cfg.address(
                        rng.gen_range(0..cfg.channels),
                        rng.gen_range(0..cfg.banks_per_channel),
                        rng.gen_range(0..cfg.subarrays_per_bank),
                        rng.gen_range(0..32),
                        0,
                    ),
                    kind,
                )
            })
            .collect();
        let batch = DramSim::new(cfg).run(&reqs);
        let mut streamed_sim = DramSim::new(cfg);
        for r in &reqs {
            streamed_sim.push_request(r);
        }
        let streamed = streamed_sim.drain_stats();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn tick_cadence_matches_explicit_arrivals() {
        let cfg = DramConfig::paper(2);
        // Explicit arrivals at a 3-cycle cadence...
        let explicit: Vec<Request> = (0..40)
            .map(|i| {
                let mut r = req(&cfg, 0, (i % 4) as u32, 0, (i % 8) as u32);
                r.arrival = 3 * i as u64;
                r
            })
            .collect();
        let reference = DramSim::new(cfg).run(&explicit);
        // ...must equal ticking the streaming clock between pushes.
        let mut sim = DramSim::new(cfg);
        for i in 0..40 {
            sim.push_request(&req(&cfg, 0, (i % 4) as u32, 0, (i % 8) as u32));
            sim.tick(3);
        }
        assert_eq!(reference, sim.drain_stats());
    }

    #[test]
    fn drain_leaves_sim_reusable_without_reallocation() {
        let cfg = DramConfig::paper(4);
        let mut sim = DramSim::new(cfg);
        let reqs: Vec<Request> = (0..32).map(|i| req(&cfg, 0, i % 8, 0, i % 4)).collect();
        let first = sim.run(&reqs);
        // After the implicit drain the next identical stream must see a
        // cold memory system again: bit-identical stats, iteration over
        // iteration.
        let second = sim.run(&reqs);
        assert_eq!(first, second);
        assert!(sim.state_bytes() > 0);
    }

    /// Protocol legality on random workloads, checked from the command log.
    fn check_protocol(cfg: DramConfig, reqs: &[Request]) {
        let mut sim = DramSim::new(cfg).with_command_log();
        let _ = sim.run(reqs);
        let log = sim.command_log();
        let t = cfg.timing;
        // (1) ACT-to-ACT spacing within a channel respects tRRD; any 5
        // consecutive ACTs span more than tFAW.
        let banks_per_ch = cfg.banks_per_channel;
        for ch in 0..cfg.channels {
            let acts: Vec<u64> = log
                .iter()
                .filter(|c| c.kind == CommandKind::Act && c.bank / banks_per_ch == ch)
                .map(|c| c.cycle)
                .collect();
            let mut sorted = acts.clone();
            sorted.sort_unstable();
            for w in sorted.windows(2) {
                assert!(w[1] - w[0] >= t.rrd, "tRRD violated: {} -> {}", w[0], w[1]);
            }
            for w in sorted.windows(5) {
                assert!(w[4] - w[0] >= t.faw, "tFAW violated: {:?}", w);
            }
        }
        // (2) Per subarray: ACT→PRE ≥ tRAS and PRE→ACT ≥ tRP.
        // inerf-lint: allow(hash-order) -- point lookups keyed by (bank, subarray); never iterated
        use std::collections::HashMap;
        // inerf-lint: allow(hash-order) -- point lookups keyed by (bank, subarray); never iterated
        let mut last: HashMap<(u32, u32), (CommandKind, u64)> = HashMap::new();
        for c in log {
            if c.kind == CommandKind::Read || c.kind == CommandKind::Write {
                continue;
            }
            if let Some((pk, pc)) = last.get(&(c.bank, c.subarray)) {
                match (pk, c.kind) {
                    (CommandKind::Act, CommandKind::Pre) => {
                        assert!(c.cycle - pc >= t.ras, "tRAS violated");
                    }
                    (CommandKind::Pre, CommandKind::Act) => {
                        assert!(c.cycle - pc >= t.rp, "tRP violated");
                    }
                    _ => {}
                }
            }
            last.insert((c.bank, c.subarray), (c.kind, c.cycle));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn random_workloads_respect_protocol(seed in 0u64..1000, subarrays_log2 in 0u32..4) {
            let cfg = DramConfig::paper(1 << subarrays_log2);
            let mut rng = SmallRng::seed_from_u64(seed);
            let reqs: Vec<Request> = (0..200)
                .map(|_| {
                    let kind = if rng.gen_bool(0.3) { AccessKind::Write } else { AccessKind::Read };
                    Request::new(
                        cfg.address(
                            rng.gen_range(0..cfg.channels),
                            rng.gen_range(0..cfg.banks_per_channel),
                            rng.gen_range(0..cfg.subarrays_per_bank),
                            rng.gen_range(0..64),
                            0,
                        ),
                        kind,
                    )
                })
                .collect();
            check_protocol(cfg, &reqs);
        }

        #[test]
        fn stats_accounting_consistent(seed in 0u64..200) {
            let cfg = DramConfig::paper(4);
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = 100usize;
            let reqs: Vec<Request> = (0..n)
                .map(|_| req(&cfg, rng.gen_range(0..8), rng.gen_range(0..16), rng.gen_range(0..4), rng.gen_range(0..16)))
                .collect();
            let stats = DramSim::new(cfg).run(&reqs);
            prop_assert_eq!(stats.requests, n as u64);
            prop_assert_eq!(stats.row_hits + stats.row_misses + stats.bank_conflicts, n as u64);
            prop_assert_eq!(stats.acts, stats.row_misses + stats.bank_conflicts);
            prop_assert!(stats.pres >= stats.bank_conflicts);
            prop_assert_eq!(stats.reads + stats.writes, n as u64);
            prop_assert!(stats.total_cycles > 0);
        }
    }
}
