//! Regenerates Tab. IV: PSNR of the five algorithms over the eight scenes.
//!
//! ```text
//! cargo run --release --example psnr_table [quick|full] [scene...]
//! ```
//!
//! `quick` (default) takes a couple of minutes; `full` is the budget used
//! for the numbers recorded in EXPERIMENTS.md.

use instant_nerf::experiments::psnr::{self, PsnrBudget};
use instant_nerf::prelude::SceneKind;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let budget = match args.first().map(String::as_str) {
        Some("full") => PsnrBudget::full(),
        _ => PsnrBudget::quick(),
    };
    let scenes: Vec<SceneKind> = if args.len() > 1 {
        args[1..]
            .iter()
            .map(|name| {
                SceneKind::ALL
                    .into_iter()
                    .find(|k| k.name().eq_ignore_ascii_case(name))
                    .ok_or_else(|| format!("unknown scene {name}"))
            })
            .collect::<Result<_, _>>()?
    } else {
        SceneKind::ALL.to_vec()
    };

    println!(
        "Training 5 methods x {} scenes ({} iterations each)...",
        scenes.len(),
        budget.iterations
    );
    let start = std::time::Instant::now();
    let rows = psnr::run(&budget, &scenes, 42);
    println!("{}", psnr::render(&rows, &scenes));
    println!("({:.1} s total)", start.elapsed().as_secs_f64());
    println!(
        "\nPaper Tab. IV averages: NeRF 31.01, FastNeRF 29.90, TensoRF 32.00, iNGP 32.99, Ours 32.76"
    );
    println!("Absolute dB differ (procedural scenes, small budget); the ordering is the target.");
    Ok(())
}
