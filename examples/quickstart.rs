//! Quickstart: train an Instant-NeRF on a procedural scene and render a
//! held-out view.
//!
//! ```text
//! cargo run --release --example quickstart [scene] [iterations]
//! ```

use instant_nerf::prelude::*;
use instant_nerf::scenes::zoo;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().collect();
    let scene_name = args.get(1).map(String::as_str).unwrap_or("Lego");
    let iterations: usize = args.get(2).map_or(Ok(200), |s| s.parse())?;

    let kind = SceneKind::ALL
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(scene_name))
        .ok_or_else(|| {
            format!(
                "unknown scene {scene_name}; try one of {:?}",
                SceneKind::ALL
            )
        })?;

    println!("Generating the '{kind}' dataset (oracle renders)...");
    let scene = zoo::scene(kind);
    let dataset = DatasetConfig::small().generate(&scene);
    println!(
        "  {} train views, {} test views, {} training pixels",
        dataset.train_views.len(),
        dataset.test_views.len(),
        dataset.train_pixel_count()
    );

    let model = IngpModel::new(ModelConfig::small(HashFunction::Morton), 42);
    println!(
        "Model: {} parameters (Morton locality-sensitive hash)",
        model.parameter_count()
    );
    let mut trainer = Trainer::new(model, TrainConfig::small(), 7);

    println!("Training for {iterations} iterations...");
    let start = std::time::Instant::now();
    let before = trainer.eval_psnr(&dataset);
    for chunk in 0..iterations.div_ceil(50) {
        let n = 50.min(iterations - chunk * 50);
        let report = trainer.train(&dataset, n);
        println!(
            "  iter {:4}: loss {:.5}",
            (chunk * 50 + n),
            report.last_loss
        );
    }
    let after = trainer.eval_psnr(&dataset);
    println!(
        "PSNR: {before:.2} dB -> {after:.2} dB in {:.1} s",
        start.elapsed().as_secs_f64()
    );

    // Render a held-out view and save it next to the ground truth, under
    // target/ so example runs never dirty the repository checkout.
    let out_dir = std::path::Path::new("target/quickstart");
    std::fs::create_dir_all(out_dir)?;
    let view = &dataset.test_views[0];
    let rendered = trainer.render_view(&view.camera, &dataset.bounds);
    let rendered_path = out_dir.join("rendered.ppm");
    let truth_path = out_dir.join("truth.ppm");
    std::fs::write(&rendered_path, rendered.to_ppm())?;
    std::fs::write(&truth_path, view.image.to_ppm())?;
    println!(
        "Wrote {} and {}",
        rendered_path.display(),
        truth_path.display()
    );
    Ok(())
}
