//! Regenerates the paper's characterization figures and tables.
//!
//! ```text
//! cargo run --release --example paper_figures [fig1|fig4|fig6|fig7|fig9|fig11|tab1|tab2|tab3|ext|all] [--json DIR]
//! ```
//!
//! With `--json DIR`, machine-readable result dumps are written alongside
//! the printed tables (one file per experiment).

use instant_nerf::experiments::{extension, fig1, fig11, fig4, fig6, fig7, fig9, tables};
use instant_nerf::prelude::SceneKind;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().cloned().unwrap_or_else(|| "all".to_string());
    let all = which == "all";
    let json_dir = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir)?;
    }
    let dump = |name: &str, value: &dyn erased::Dump| -> Result<(), Box<dyn Error>> {
        if let Some(dir) = &json_dir {
            std::fs::write(format!("{dir}/{name}.json"), value.to_json()?)?;
        }
        Ok(())
    };

    if all || which == "tab1" {
        println!("{}", tables::tab1());
    }
    if all || which == "tab2" {
        println!("{}", tables::tab2());
    }
    if all || which == "tab3" {
        println!("{}", tables::tab3());
    }
    if all || which == "fig1" {
        println!("{}", fig1::render(&fig1::run()));
    }
    if all || which == "fig4" {
        println!("{}", fig4::render(&fig4::run()));
    }
    if all || which == "fig6" {
        println!("{}", fig6::render(&fig6::run(2048, 7)));
    }
    if all || which == "fig7" {
        println!("{}", fig7::render(&fig7::run(64, 128, 7)));
    }
    if all || which == "fig9" {
        println!("{}", fig9::render(&fig9::run(16, 96, 7)));
    }
    if all || which == "ext" {
        // Average-scene accelerator cost from a quick Fig. 11 run.
        let rows = fig11::run(&[SceneKind::Mic, SceneKind::Lego], 1024, 128, 7);
        let accel_s = rows.iter().map(|r| r.accel_seconds).sum::<f64>() / rows.len() as f64;
        // Energy: scale from the speedup/energy ratios of the first row.
        let accel_j = rows[0].accel_seconds * 10.0; // ~10 W NMP power envelope
        println!("{}", extension::render(&extension::predict(accel_s, accel_j)));
    }
    if all || which == "fig11" {
        println!("Running Fig. 11 over all eight scenes (a minute or two)...");
        let rows = fig11::run(&SceneKind::ALL, 2048, 128, 7);
        dump("fig11", &rows)?;
        println!("{}", fig11::render(&rows));
        let min = rows.iter().map(|r| r.speedup_xnx).fold(f64::MAX, f64::min);
        let max = rows.iter().map(|r| r.speedup_xnx).fold(0.0f64, f64::max);
        println!("XNX speedup range: {min:.1}x - {max:.1}x (paper: 22.0x - 49.3x)");
        let min = rows.iter().map(|r| r.speedup_tx2).fold(f64::MAX, f64::min);
        let max = rows.iter().map(|r| r.speedup_tx2).fold(0.0f64, f64::max);
        println!("TX2 speedup range: {min:.1}x - {max:.1}x (paper: 109.5x - 266.1x)");
    }
    Ok(())
}

/// Minimal object-safe serialization shim so heterogeneous experiment
/// results share one dump path.
mod erased {
    use serde::Serialize;
    use std::error::Error;

    pub trait Dump {
        fn to_json(&self) -> Result<String, Box<dyn Error>>;
    }

    impl<T: Serialize> Dump for T {
        fn to_json(&self) -> Result<String, Box<dyn Error>> {
            Ok(serde_json::to_string_pretty(self)?)
        }
    }
}
