//! Regenerates the paper's characterization figures and tables.
//!
//! ```text
//! cargo run --release --example paper_figures [fig1|fig4|fig6|fig7|fig9|fig11|tab1|tab2|tab3|ext|cosim|precision|all] [--json DIR]
//! ```
//!
//! With `--json DIR`, machine-readable result dumps are written alongside
//! the printed output (one file per figure experiment; the tab1-3
//! constant tables are print-only).

use instant_nerf::experiments::{
    cosim, extension, fig1, fig11, fig4, fig6, fig7, fig9, precision, tables,
};
use instant_nerf::prelude::SceneKind;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    const KNOWN: [&str; 13] = [
        "all",
        "tab1",
        "tab2",
        "tab3",
        "fig1",
        "fig4",
        "fig6",
        "fig7",
        "fig9",
        "fig11",
        "ext",
        "cosim",
        "precision",
    ];
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The figure name is the first argument left after removing "--json"
    // and its value; the two may appear in either order.
    let json_pos = args.iter().position(|a| a == "--json");
    let json_dir = json_pos.and_then(|i| args.get(i + 1)).cloned();
    if json_pos.is_some() && json_dir.is_none() {
        return Err("--json requires a directory argument".into());
    }
    let which = args
        .iter()
        .enumerate()
        .filter(|(i, _)| json_pos != Some(*i) && json_pos != Some(i.wrapping_sub(1)))
        .map(|(_, a)| a.clone())
        .next()
        .unwrap_or_else(|| "all".to_string());
    if !KNOWN.contains(&which.as_str()) {
        return Err(format!("unknown figure `{which}`; expected one of {KNOWN:?}").into());
    }
    let all = which == "all";
    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir)?;
    }
    let dump = |name: &str, value: &dyn erased::Dump| -> Result<(), Box<dyn Error>> {
        if let Some(dir) = &json_dir {
            std::fs::write(format!("{dir}/{name}.json"), value.to_json()?)?;
        }
        Ok(())
    };

    if all || which == "tab1" {
        println!("{}", tables::tab1());
    }
    if all || which == "tab2" {
        println!("{}", tables::tab2());
    }
    if all || which == "tab3" {
        println!("{}", tables::tab3());
    }
    if all || which == "fig1" {
        let rows = fig1::run();
        dump("fig1", &rows)?;
        println!("{}", fig1::render(&rows));
    }
    if all || which == "fig4" {
        let rows = fig4::run();
        dump("fig4", &rows)?;
        println!("{}", fig4::render(&rows));
    }
    if all || which == "fig6" {
        let rows = fig6::run(2048, 7);
        dump("fig6", &rows)?;
        println!("{}", fig6::render(&rows));
    }
    if all || which == "fig7" {
        let result = fig7::run(64, 128, 7);
        dump("fig7", &result)?;
        println!("{}", fig7::render(&result));
    }
    if all || which == "fig9" {
        let result = fig9::run(16, 96, 7);
        dump("fig9", &result)?;
        println!("{}", fig9::render(&result));
    }
    if all || which == "cosim" {
        let result = cosim::run(instant_nerf::trainer::Engine::Batched, 8, 7);
        dump("cosim", &result)?;
        println!("{}", cosim::render(&result));
    }
    if all || which == "precision" {
        let result = precision::run(60, 7);
        dump("precision", &result)?;
        println!("{}", precision::render(&result));
    }
    if all || which == "ext" {
        // Average-scene accelerator cost from a quick Fig. 11 run.
        let rows = fig11::run(&[SceneKind::Mic, SceneKind::Lego], 1024, 128, 7);
        let accel_s = rows.iter().map(|r| r.accel_seconds).sum::<f64>() / rows.len() as f64;
        // Energy: scale from the speedup/energy ratios of the first row.
        let accel_j = rows[0].accel_seconds * 10.0; // ~10 W NMP power envelope
        let prediction = extension::predict(accel_s, accel_j);
        dump("ext", &prediction)?;
        println!("{}", extension::render(&prediction));
    }
    if all || which == "fig11" {
        println!("Running Fig. 11 over all eight scenes (a minute or two)...");
        let rows = fig11::run(&SceneKind::ALL, 2048, 128, 7);
        dump("fig11", &rows)?;
        println!("{}", fig11::render(&rows));
        let min = rows.iter().map(|r| r.speedup_xnx).fold(f64::MAX, f64::min);
        let max = rows.iter().map(|r| r.speedup_xnx).fold(0.0f64, f64::max);
        println!("XNX speedup range: {min:.1}x - {max:.1}x (paper: 22.0x - 49.3x)");
        let min = rows.iter().map(|r| r.speedup_tx2).fold(f64::MAX, f64::min);
        let max = rows.iter().map(|r| r.speedup_tx2).fold(0.0f64, f64::max);
        println!("TX2 speedup range: {min:.1}x - {max:.1}x (paper: 109.5x - 266.1x)");
    }
    Ok(())
}

/// Minimal object-safe serialization shim so heterogeneous experiment
/// results share one dump path.
mod erased {
    use serde::Serialize;
    use std::error::Error;

    pub trait Dump {
        fn to_json(&self) -> Result<String, Box<dyn Error>>;
    }

    impl<T: Serialize> Dump for T {
        fn to_json(&self) -> Result<String, Box<dyn Error>> {
            Ok(serde_json::to_string_pretty(self)?)
        }
    }
}
