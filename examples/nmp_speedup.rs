//! Deep-dive into the accelerator's per-iteration timing: where the cycles
//! go, what each co-design element buys, and the resulting Fig. 11 speedup.
//!
//! ```text
//! cargo run --release --example nmp_speedup [scene]
//! ```

use instant_nerf::accel::mapping::{HashTableMapping, MappingScheme};
use instant_nerf::accel::parallel::ParallelismPlan;
use instant_nerf::accel::PipelineModel;
use instant_nerf::experiments::traces::{gpu_scene_factor, scene_trace};
use instant_nerf::prelude::*;
use instant_nerf::scenes::zoo;
use std::error::Error;

const BATCH: u64 = 256 * 1024;
const ITERS: u64 = 35_000;

fn main() -> Result<(), Box<dyn Error>> {
    let scene_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Lego".to_string());
    let kind = SceneKind::ALL
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(&scene_name))
        .ok_or_else(|| format!("unknown scene {scene_name}"))?;

    let model = ModelConfig::paper(HashFunction::Morton);
    let grid = HashGrid::new(model.grid, 7);
    let scene = zoo::scene(kind);
    println!("Sampling the '{kind}' access trace...");
    let st = scene_trace(&scene, &grid, 4096, 128, 7);
    println!(
        "  {} points, occupancy {:.1}%, fine-spread {:.2}",
        st.points,
        100.0 * st.occupancy,
        st.fine_spread
    );

    let pipeline = PipelineModel::paper(model);
    let est = pipeline.estimate_iteration(&st.trace, st.points, BATCH);
    println!("\nPer-iteration breakdown (batch = 256K points):");
    for s in &est.steps {
        println!(
            "  {:7}  dram {:7.3} ms   compute {:7.3} ms",
            format!("{:?}", s.step),
            s.dram_seconds * 1e3,
            s.compute_seconds * 1e3
        );
    }
    println!("  inter-bank bus: {:.3} ms", est.bus_seconds * 1e3);
    println!(
        "  pipelined: {:.3} ms/iter   (serial would be {:.3} ms)",
        est.pipelined_seconds * 1e3,
        est.serial_seconds * 1e3
    );

    let accel_scene = pipeline.scene_estimate(&est, ITERS);
    println!(
        "\nFull scene ({} iters): {:.0} s, {:.0} J",
        ITERS, accel_scene.training_seconds, accel_scene.training_joules
    );

    let factor = gpu_scene_factor(&st.stats());
    let gpu_model = ModelConfig::paper(HashFunction::Original);
    for spec in [GpuSpec::xnx(), GpuSpec::tx2()] {
        let cost = TrainingCost::estimate(&spec, &gpu_model, BATCH, ITERS, factor);
        println!(
            "  vs {:5}: {:6.0} s  -> {:5.1}x speedup, {:5.1}x energy gain",
            spec.name,
            cost.total_seconds,
            cost.total_seconds / accel_scene.training_seconds,
            cost.total_joules / accel_scene.training_joules
        );
    }

    println!("\nAblations (pipelined ms/iter):");
    let base = est.pipelined_seconds * 1e3;
    println!("  paper design point            : {base:.3}");
    let no_spread = PipelineModel::paper(model)
        .with_mapping(
            HashTableMapping::paper(MappingScheme::ClusteredNoSpread, 32),
            32,
        )
        .estimate_iteration(&st.trace, st.points, BATCH)
        .pipelined_seconds
        * 1e3;
    println!("  - subarray spreading          : {no_spread:.3}");
    let one_level = PipelineModel::paper(model)
        .with_mapping(
            HashTableMapping::paper(MappingScheme::OneLevelPerBank, 32),
            32,
        )
        .estimate_iteration(&st.trace, st.points, BATCH)
        .pipelined_seconds
        * 1e3;
    println!("  - inter-level clustering      : {one_level:.3}");
    let all_data = PipelineModel::paper(model)
        .with_plan(ParallelismPlan::all_data())
        .estimate_iteration(&st.trace, st.points, BATCH)
        .pipelined_seconds
        * 1e3;
    println!("  - heterogeneous parallelism   : {all_data:.3} (all data-parallel)");
    let serial = est.serial_seconds * 1e3;
    println!("  - stage pipelining            : {serial:.3}");
    Ok(())
}
