//! Cross-crate integration tests: the experiment drivers produce
//! shape-correct outputs and the co-design claims hold end to end.

use instant_nerf::experiments::{fig1, fig11, fig4, fig6, fig7, fig9, tables, traces};
use instant_nerf::prelude::*;

#[test]
fn fig1_experiment_reproduces_shape() {
    let rows = fig1::run();
    assert_eq!(rows.len(), 3);
    // Ordering: TX2 slowest, 2080Ti fastest.
    let t = |name: &str| {
        rows.iter()
            .find(|r| r.device == name)
            .unwrap()
            .total_seconds
    };
    assert!(t("TX2") > t("XNX"));
    assert!(t("XNX") > t("2080Ti"));
    // HT + HT_b dominate the breakdown on the edge GPU.
    let xnx = rows.iter().find(|r| r.device == "XNX").unwrap();
    let pct = |label: &str| xnx.breakdown.iter().find(|(l, _)| l == label).unwrap().1;
    assert!(pct("HT") + pct("HT_b") > 50.0);
}

#[test]
fn fig4_memory_bound_shape() {
    let rows = fig4::run();
    assert_eq!(rows.len(), 6);
    // Every kernel moves substantial DRAM traffic while ALUs stay cold.
    for r in &rows {
        assert!(r.read_gbs + r.write_gbs > 5.0, "{}", r.step);
        assert!(r.fp16_util < 0.3 && r.int32_util < 0.3, "{}", r.step);
    }
}

#[test]
fn fig6_and_fig7_locality_chain() {
    // Fig. 6 establishes spatial locality in index space; Fig. 7 shows the
    // resulting bandwidth win. Both must point in the same direction.
    let f6 = fig6::run(256, 11);
    let ours = &f6[0];
    let org = &f6[1];
    assert!(ours.requests_per_cube < org.requests_per_cube);
    let f7 = fig7::run(16, 128, 11);
    assert!(f7.bandwidth_improvement.iter().all(|&x| x > 1.0));
}

#[test]
fn fig9_sweep_is_complete() {
    let f = fig9::run(4, 48, 2);
    assert_eq!(f.raw_conflicts.len(), fig9::SUBARRAY_SWEEP.len());
    for row in &f.raw_conflicts {
        assert_eq!(row.len(), 16);
    }
}

#[test]
fn fig11_speedup_over_both_gpus() {
    let rows = fig11::run(&[SceneKind::Chair], 512, 96, 4);
    let r = &rows[0];
    assert!(r.speedup_xnx > 5.0, "XNX speedup {:.1}", r.speedup_xnx);
    assert!(r.speedup_tx2 > r.speedup_xnx);
    assert!(r.energy_gain_tx2 > r.energy_gain_xnx);
}

#[test]
fn tables_render_without_panicking() {
    assert!(tables::tab1().contains("XNX"));
    assert!(tables::tab2().contains("HT_b"));
    assert!(tables::tab3().contains("200 MHz"));
}

#[test]
fn scene_traces_feed_both_hardware_models() {
    // The same trace drives the NMP pipeline estimate and the GPU locality
    // factor — the contract the Fig. 11 driver relies on.
    let model = ModelConfig::paper(HashFunction::Morton);
    let grid = HashGrid::new(model.grid, 5);
    let scene = instant_nerf::scenes::zoo::scene(SceneKind::Drums);
    let st = traces::scene_trace(&scene, &grid, 400, 64, 5);
    assert!(st.points >= 400);
    let pipeline = PipelineModel::paper(model);
    let est = pipeline.estimate_iteration(&st.trace, st.points, 256 * 1024);
    assert!(est.pipelined_seconds > 0.0 && est.pipelined_seconds < 0.1);
    let factor = traces::gpu_scene_factor(&st.stats());
    assert!((0.5..2.5).contains(&factor));
}

#[test]
fn streaming_order_only_affects_hardware_not_math() {
    // Two trainers differing only in streaming order must converge
    // similarly (the order is a hardware-level choice).
    let scene = instant_nerf::scenes::zoo::scene(SceneKind::Mic);
    let dataset = DatasetConfig::tiny().generate(&scene);
    let mk = |order| {
        let cfg = TrainConfig {
            order,
            ..TrainConfig::tiny()
        };
        let model = IngpModel::new(ModelConfig::tiny(), 9);
        let mut t = Trainer::new(model, cfg, 4);
        t.train(&dataset, 30);
        t.eval_psnr(&dataset)
    };
    let a = mk(StreamingOrder::RayFirst);
    let b = mk(StreamingOrder::Random);
    assert!((a - b).abs() < 3.0, "orders diverged: {a:.2} vs {b:.2} dB");
}

#[test]
fn warmstart_experiment_reproduces_shape() {
    let r = instant_nerf::experiments::warmstart::run();
    assert_eq!(r.scene, "Mic");
    assert!(r.pretrain_iterations > 0 && r.finetune_iterations > 0);
    assert!(r.resumed_psnr.is_finite() && r.warm_psnr.is_finite() && r.cold_psnr.is_finite());
    // Fine-tuning a pretrained model must not be worse than not
    // fine-tuning it at all on the drifted scene.
    assert!(r.warm_psnr >= r.resumed_psnr - 1.0);
    if let Some(n) = r.cold_iterations_to_match {
        assert!(n >= r.finetune_iterations && n <= r.cold_search_cap);
    }
    let rendered = instant_nerf::experiments::warmstart::render(&r);
    assert!(rendered.contains("PSNR"));
}

#[test]
fn checkpointed_training_resumes_to_identical_psnr_bits() {
    // End-to-end through the on-disk path: train with periodic
    // checkpoints, then resume from the directory and verify the
    // continued run reproduces the straight run's PSNR bit for bit.
    let scene = instant_nerf::scenes::zoo::scene(SceneKind::Mic);
    let dataset = DatasetConfig::tiny().generate(&scene);
    let cfg = TrainConfig::tiny();
    let dir = std::env::temp_dir().join(format!("inerf-ckpt-{}", std::process::id()));

    let mut straight = Trainer::new(IngpModel::for_config(ModelConfig::tiny(), &cfg, 9), cfg, 4);
    straight.train(&dataset, 12);
    let want = straight.eval_psnr(&dataset);

    let mut ckpt = Trainer::new(IngpModel::for_config(ModelConfig::tiny(), &cfg, 9), cfg, 4)
        .checkpoint_every_n(&dir, 4, 2);
    ckpt.train_checkpointed(&dataset, 8)
        .expect("checkpointed training failed");
    drop(ckpt);

    let mut resumed = Trainer::resume_from(&dir, cfg).expect("resume failed");
    assert_eq!(resumed.global_step(), 8);
    resumed.train(&dataset, 4);
    let got = resumed.eval_psnr(&dataset);
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(
        got.to_bits(),
        want.to_bits(),
        "resumed PSNR {got} != straight {want}"
    );
}
