//! Cross-crate property tests: invariants that must hold across the
//! algorithm/hardware boundary for arbitrary inputs.

use instant_nerf::accel::{AccelConfig, HashTableMapping, MappingScheme};
use instant_nerf::dram::{DramSim, Request};
use instant_nerf::encoding::{HashFunction, HashGrid, HashGridConfig, LookupTrace};
use instant_nerf::geom::Vec3;
use instant_nerf::mlp::fp16::quantize_f16;
use instant_nerf::render::volume::{composite, composite_backward, SamplePoint};
use instant_nerf::trainer::workload::{step_sizes, Step};
use instant_nerf::trainer::ModelConfig;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every hash-table coordinate maps to a legal physical address, for
    /// every mapping scheme and subarray count.
    #[test]
    fn mapping_addresses_always_legal(
        level in 0u32..16,
        entry in 0u32..(1 << 19),
        sa_log2 in 0u32..7,
        scheme_idx in 0usize..3
    ) {
        let sa = 1u32 << sa_log2;
        let scheme = [
            MappingScheme::Clustered,
            MappingScheme::OneLevelPerBank,
            MappingScheme::ClusteredNoSpread,
        ][scheme_idx];
        let mapping = HashTableMapping::paper(scheme, sa);
        let dram = AccelConfig::paper().nmp_dram(sa);
        let addr = mapping.map_entry(level, entry, &dram);
        prop_assert!(addr.channel < dram.channels);
        prop_assert!(addr.bank < dram.banks_per_channel);
        prop_assert!(addr.subarray < dram.subarrays_per_bank);
        prop_assert!(addr.row < dram.rows_per_subarray);
        prop_assert!(addr.col < dram.row_bytes);
    }

    /// The request stream never exceeds the un-filtered bound of eight rows
    /// per cube (reads) plus one drain write per touched row.
    #[test]
    fn request_stream_bounded(seed in 0u64..100, points in 1usize..64) {
        let grid = HashGrid::new(HashGridConfig::paper(HashFunction::Morton), seed);
        let mut trace = LookupTrace::new();
        let mut s = seed.wrapping_mul(0x9E37_79B9_97F4_A7C5) | 1;
        for _ in 0..points {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            let p = Vec3::new(
                (s & 0xffff) as f32 / 65535.0,
                ((s >> 16) & 0xffff) as f32 / 65535.0,
                ((s >> 32) & 0xffff) as f32 / 65535.0,
            );
            trace.push_point(&grid.cube_lookups(p));
        }
        let mapping = HashTableMapping::paper(MappingScheme::Clustered, 8);
        let dram = AccelConfig::paper().nmp_dram(8);
        let reads = mapping.requests_for_trace(&trace, &dram, false);
        let rw = mapping.requests_for_trace(&trace, &dram, true);
        let bound = trace.cubes().len() * 8;
        prop_assert!(reads.len() <= bound);
        prop_assert!(rw.len() <= 2 * bound);
        prop_assert!(rw.len() >= reads.len());
    }

    /// A prefix of a request stream never takes longer than the whole
    /// stream (simulator monotonicity).
    #[test]
    fn dram_makespan_monotone_in_prefix(seed in 0u64..50) {
        let grid = HashGrid::new(HashGridConfig::paper(HashFunction::Morton), seed);
        let mut trace = LookupTrace::new();
        for i in 0..48u32 {
            let x = (i as f32 + 0.5) / 48.0;
            trace.push_point(&grid.cube_lookups(Vec3::new(x, 0.4, 0.6)));
        }
        let mapping = HashTableMapping::paper(MappingScheme::Clustered, 8);
        let dram = AccelConfig::paper().nmp_dram(8);
        let reqs: Vec<Request> = mapping.requests_for_trace(&trace, &dram, false);
        prop_assume!(reqs.len() >= 4);
        let half = DramSim::new(dram).run(&reqs[..reqs.len() / 2]).total_cycles;
        let full = DramSim::new(dram).run(&reqs).total_cycles;
        prop_assert!(full >= half, "prefix {half} vs full {full}");
    }

    /// Rendering backward is finite for any bounded inputs, including
    /// degenerate densities.
    #[test]
    fn composite_backward_always_finite(
        sigmas in proptest::collection::vec(-5.0f32..100.0, 1..16),
        gx in -10.0f32..10.0
    ) {
        let samples: Vec<SamplePoint> = sigmas
            .iter()
            .map(|&s| SamplePoint { sigma: s, color: Vec3::new(0.3, 0.6, 0.9) })
            .collect();
        let dts = vec![0.05f32; samples.len()];
        let out = composite(&samples, &dts);
        let grads = composite_backward(&samples, &dts, &out, Vec3::new(gx, -gx, 0.5));
        for g in &grads.d_sigma {
            prop_assert!(g.is_finite());
        }
        for g in &grads.d_color {
            prop_assert!(g.is_finite());
        }
    }

    /// The FP16 storage path the accelerator uses never increases the
    /// magnitude of an embedding (no energy injection through quantization).
    #[test]
    fn fp16_storage_never_amplifies(x in -1.0f32..1.0) {
        let q = quantize_f16(x);
        prop_assert!(q.abs() <= x.abs() * (1.0 + 1.0 / 1024.0) + 1e-7);
    }

    /// Tab. II operand sizes scale linearly with the batch size (the
    /// assumption behind trace-sample scaling in the pipeline model).
    #[test]
    fn workload_sizes_linear_in_batch(points in 1u64..1_000_000) {
        let model = ModelConfig::paper(HashFunction::Morton);
        for step in Step::ALL {
            let one = step_sizes(&model, step, points);
            let two = step_sizes(&model, step, 2 * points);
            prop_assert_eq!(two.input_bytes, 2 * one.input_bytes);
            prop_assert_eq!(two.output_bytes, 2 * one.output_bytes);
            // Parameters are batch-independent.
            prop_assert_eq!(two.param_bytes, one.param_bytes);
        }
    }
}

/// Failure injection: a model poisoned with a non-finite embedding must not
/// crash the renderer (the composite clamps negative densities and the rest
/// flows through IEEE semantics).
#[test]
fn renderer_survives_degenerate_samples() {
    let samples = [
        SamplePoint {
            sigma: f32::INFINITY,
            color: Vec3::new(0.5, 0.5, 0.5),
        },
        SamplePoint {
            sigma: 1.0,
            color: Vec3::new(1.0, 0.0, 0.0),
        },
    ];
    let out = composite(&samples, &[0.1, 0.1]);
    // Infinite density saturates alpha to 1 — a fully opaque first sample.
    assert!((out.weights[0] - 1.0).abs() < 1e-6);
    assert!(out.color.is_finite());
}
