//! The workspace linting itself: `inerf-lint` must report zero unwaived
//! findings over the whole tree, and the committed `UNSAFE_AUDIT.md` must
//! match what the linter would regenerate.
//!
//! This is the tier-1 integration of the static pass: `cargo test -q`
//! fails the moment an unwaived hazard (or a stale audit) lands, without
//! anyone having to remember to run the binary.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // This test is wired into crates/core, so the manifest dir is
    // crates/core and the workspace root is two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root must resolve")
}

#[test]
fn workspace_has_no_unwaived_findings() {
    let root = workspace_root();
    let report = inerf_lint::lint_workspace(&root).expect("workspace must lint");
    let offenders: Vec<String> = report
        .unwaived()
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        offenders.is_empty(),
        "unwaived lint findings (waive with `// inerf-lint: allow(<rule>) -- <why>` \
or fix; see `cargo run -p inerf_lint -- --explain <rule>`):\n{}",
        offenders.join("\n")
    );
    assert!(
        report.files_scanned > 50,
        "workspace scan saw only {} files; the walk is broken",
        report.files_scanned
    );
}

#[test]
fn committed_unsafe_audit_is_current() {
    let root = workspace_root();
    let (_, regenerated) = inerf_lint::lint_and_audit(&root).expect("workspace must lint");
    let committed = std::fs::read_to_string(root.join(inerf_lint::UNSAFE_AUDIT_FILE))
        .expect("UNSAFE_AUDIT.md must be committed at the workspace root");
    assert_eq!(
        committed, regenerated,
        "UNSAFE_AUDIT.md is stale; regenerate with \
`cargo run -p inerf_lint -- --write-unsafe-audit`"
    );
}

#[test]
fn every_waiver_in_the_tree_is_justified() {
    let root = workspace_root();
    let report = inerf_lint::lint_workspace(&root).expect("workspace must lint");
    for f in &report.findings {
        if let Some(j) = &f.waived {
            assert!(
                j.len() >= 10,
                "{}:{}: waiver justification too thin to audit: {j:?}",
                f.file,
                f.line
            );
        }
    }
}
