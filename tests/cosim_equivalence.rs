//! End-to-end equivalence of the online co-simulation pipeline: training
//! with the NMP memory system simulated live (streaming trace bus →
//! request generation → incremental cycle-level DRAM simulation) must be
//! bit-identical to materializing per-iteration traces and replaying them
//! offline — for both trainer engines and both hash functions.

use instant_nerf::accel::{CosimSink, PipelineModel};
use instant_nerf::encoding::{BatchBufferSink, HashFunction};
use instant_nerf::experiments::{cosim, traces};
use instant_nerf::prelude::*;
use instant_nerf::scenes::zoo::scene;
use instant_nerf::trainer::Engine;

#[test]
fn online_cosim_matches_buffered_replay_for_all_combinations() {
    let dataset = DatasetConfig::tiny().generate(&scene(SceneKind::Mic));
    for hash in [HashFunction::Morton, HashFunction::Original] {
        for engine in [Engine::Scalar, Engine::Batched] {
            let model_cfg = ModelConfig::small(hash);
            let config = TrainConfig::tiny().with_engine(engine);
            let batch = config.points_per_iteration() as u64;
            let pipeline = PipelineModel::paper(model_cfg);

            // Online path.
            let mut cosim_sink = CosimSink::new(pipeline.clone(), batch);
            let mut trainer = Trainer::new(IngpModel::new(model_cfg, 3), config, 17);
            trainer.train_with_sink(&dataset, 2, &mut cosim_sink);

            // Buffered reference on the identical trajectory.
            let mut buffer = BatchBufferSink::new();
            let mut trainer = Trainer::new(IngpModel::new(model_cfg, 3), config, 17);
            trainer.train_with_sink(&dataset, 2, &mut buffer);

            let tag = format!("{hash:?}/{engine:?}");
            let stats = cosim_sink.stats();
            let mut pipelined = 0.0f64;
            let mut energy = 0.0f64;
            let mut iterations = 0u64;
            for trace in buffer.batches() {
                if trace.point_count() == 0 {
                    continue;
                }
                let est = pipeline.estimate_iteration(trace, trace.point_count() as u64, batch);
                pipelined += est.pipelined_seconds;
                energy += est.dram_energy_pj;
                iterations += 1;
            }
            assert_eq!(stats.iterations, iterations, "{tag}: iteration count");
            assert_eq!(
                stats.pipelined_seconds, pipelined,
                "{tag}: pipelined seconds diverged"
            );
            assert_eq!(stats.dram_energy_pj, energy, "{tag}: DRAM energy diverged");
            assert!(
                stats.peak_state_bytes > 0 && stats.peak_state_bytes < buffer.heap_bytes().max(1),
                "{tag}: online state {} bytes should undercut the {} byte buffer",
                stats.peak_state_bytes,
                buffer.heap_bytes()
            );
        }
    }
}

#[test]
fn streamed_pipeline_estimate_matches_offline_trace_replay() {
    // The Fig. 11 data path: scene access stream → iteration sink →
    // estimate, against the materialized scene trace → estimate_iteration.
    let model = ModelConfig::paper(HashFunction::Morton);
    let grid = HashGrid::new(model.grid, 5);
    let sc = scene(SceneKind::Drums);
    let pipeline = PipelineModel::paper(model);

    let st = traces::scene_trace(&sc, &grid, 300, 48, 5);
    let offline = pipeline.estimate_iteration(&st.trace, st.points.max(1), 256 * 1024);

    let mut sink = pipeline.iteration_sink();
    let stats = traces::scene_trace_into(&sc, &grid, 300, 48, 5, &mut sink);
    assert_eq!(stats, st.stats());
    let online = pipeline.estimate_streamed(&mut sink, 256 * 1024);
    assert_eq!(offline, online);
}

#[test]
fn cosim_experiment_runs_constant_memory_with_identical_stats() {
    // The acceptance-criteria check: a training run of the Tab. II small
    // workload co-simulates online with bit-identical stats and a trace
    // footprint that does not scale with run length.
    let r = cosim::run(Engine::Batched, 3, 7);
    assert!(r.stats_match, "streamed/buffered stats diverged");
    assert!(r.streamed.sim_pipelined_seconds > 0.0);
    assert!(
        r.streamed.peak_trace_bytes * 10 < r.buffered.peak_trace_bytes,
        "streamed {} vs buffered {} bytes",
        r.streamed.peak_trace_bytes,
        r.buffered.peak_trace_bytes
    );
    // Longer runs must not grow the streamed footprint.
    let longer = cosim::run(Engine::Batched, 6, 7);
    assert_eq!(
        longer.streamed.peak_trace_bytes, r.streamed.peak_trace_bytes,
        "co-simulation state grew with run length"
    );
    assert!(longer.buffered.peak_trace_bytes > r.buffered.peak_trace_bytes);
}
