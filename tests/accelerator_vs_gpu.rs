//! Hardware-model integration tests: the NMP accelerator beats the GPU
//! baselines on the same workload, and every co-design element contributes.

use instant_nerf::accel::mapping::{HashTableMapping, MappingScheme};
use instant_nerf::accel::parallel::ParallelismPlan;
use instant_nerf::accel::PipelineModel;
use instant_nerf::encoding::{HashFunction, HashGrid, LookupTrace};
use instant_nerf::geom::Vec3;
use instant_nerf::gpu::{GpuSpec, TrainingCost};
use instant_nerf::trainer::workload::Step;
use instant_nerf::trainer::ModelConfig;

const BATCH: u64 = 256 * 1024;
const ITERS: u64 = 35_000;

fn ray_trace(grid: &HashGrid, rays: usize, samples: usize) -> (LookupTrace, u64) {
    let mut t = LookupTrace::new();
    for r in 0..rays {
        let y = 0.04 + 0.9 * r as f32 / rays as f32;
        for s in 0..samples {
            let x = (s as f32 + 0.5) / samples as f32;
            t.push_point(&grid.cube_lookups(Vec3::new(x, y, 0.37)));
        }
    }
    (t, (rays * samples) as u64)
}

fn paper_estimate() -> (f64, f64) {
    let model = ModelConfig::paper(HashFunction::Morton);
    let grid = HashGrid::new(model.grid, 5);
    let (trace, n) = ray_trace(&grid, 4, 128);
    let pm = PipelineModel::paper(model);
    let iter = pm.estimate_iteration(&trace, n, BATCH);
    let scene = pm.scene_estimate(&iter, ITERS);
    (scene.training_seconds, scene.training_joules)
}

#[test]
fn accelerator_beats_xnx_by_an_order_of_magnitude() {
    let (accel_s, accel_j) = paper_estimate();
    let gpu_model = ModelConfig::paper(HashFunction::Original);
    let xnx = TrainingCost::estimate(&GpuSpec::xnx(), &gpu_model, BATCH, ITERS, 1.0);
    let speedup = xnx.total_seconds / accel_s;
    assert!(
        speedup > 10.0,
        "speedup {speedup:.1}x too small (accel {accel_s:.0} s, XNX {:.0} s)",
        xnx.total_seconds
    );
    let energy_gain = xnx.total_joules / accel_j;
    assert!(
        energy_gain > speedup,
        "energy gain {energy_gain:.1}x vs speedup {speedup:.1}x"
    );
}

#[test]
fn accelerator_trains_in_minutes_not_hours() {
    // The "instant on-device" headline: edge GPUs need >1 h; the NMP design
    // should land in minutes.
    let (accel_s, _) = paper_estimate();
    assert!(
        (30.0..1800.0).contains(&accel_s),
        "accelerator training time {accel_s:.0} s not in the minutes range"
    );
}

#[test]
fn every_codesign_element_contributes() {
    // Ablate each element; each ablation must not help (and at least one
    // must clearly hurt).
    let model = ModelConfig::paper(HashFunction::Morton);
    let grid = HashGrid::new(model.grid, 5);
    let (trace, n) = ray_trace(&grid, 4, 128);
    let paper = PipelineModel::paper(model);
    let base = paper.estimate_iteration(&trace, n, BATCH).pipelined_seconds;

    // (1) Drop the Morton hash.
    let model_org = ModelConfig::paper(HashFunction::Original);
    let grid_org = HashGrid::new(model_org.grid, 5);
    let (trace_org, n_org) = ray_trace(&grid_org, 4, 128);
    let no_morton = PipelineModel::paper(model_org)
        .estimate_iteration(&trace_org, n_org, BATCH)
        .pipelined_seconds;

    // (2) Drop subarray spreading.
    let no_spread = PipelineModel::paper(model)
        .with_mapping(
            HashTableMapping::paper(MappingScheme::ClusteredNoSpread, 32),
            32,
        )
        .estimate_iteration(&trace, n, BATCH)
        .pipelined_seconds;

    // (3) Homogeneous parallelism plans.
    let all_data = PipelineModel::paper(model)
        .with_plan(ParallelismPlan::all_data())
        .estimate_iteration(&trace, n, BATCH)
        .pipelined_seconds;

    for (label, t) in [
        ("no-morton", no_morton),
        ("no-spread", no_spread),
        ("all-data-parallel", all_data),
    ] {
        assert!(
            t > 0.95 * base,
            "{label} ablation should not beat the paper design: {t:.4} vs {base:.4}"
        );
    }
    assert!(
        no_morton.max(all_data) > 1.2 * base,
        "at least one ablation should clearly hurt"
    );
}

#[test]
fn ht_steps_dominate_accelerator_table_banks() {
    // On the accelerator the HT/HT_b steps stay the heavy ones, mirroring
    // the GPU bottleneck they were designed to absorb.
    let model = ModelConfig::paper(HashFunction::Morton);
    let grid = HashGrid::new(model.grid, 5);
    let (trace, n) = ray_trace(&grid, 4, 128);
    let est = PipelineModel::paper(model).estimate_iteration(&trace, n, BATCH);
    let ht = est.step_seconds(Step::Ht) + est.step_seconds(Step::HtB);
    let mlp_d = est.step_seconds(Step::MlpD);
    assert!(ht > mlp_d, "HT occupancy {ht:.4} vs MLPd {mlp_d:.4}");
}

#[test]
fn gpu_and_accelerator_agree_on_workload_shape() {
    // Both models consume the same Tab. II workload: the bytes the GPU
    // model moves for HT must equal (up to the gather amplification) the
    // entry traffic the accelerator sees.
    let model = ModelConfig::paper(HashFunction::Original);
    let entry_touches = BATCH * model.grid.levels as u64 * 8;
    let gpu_ht = instant_nerf::gpu::cost::step_traffic_bytes(&model, Step::Ht, BATCH);
    assert!(
        gpu_ht as f64 > entry_touches as f64 * 32.0,
        "gather amplification missing"
    );
}
