//! End-to-end training tests: the full algorithm stack (hash grid → MLPs →
//! volume rendering → Adam) learns real scenes and matches the Tab. IV
//! structure.

use instant_nerf::prelude::*;
use instant_nerf::scenes::zoo;
use instant_nerf::trainer::baselines::NerfLite;

#[test]
fn ingp_learns_a_scene_measurably() {
    let scene = zoo::scene(SceneKind::Hotdog);
    let dataset = DatasetConfig::tiny().generate(&scene);
    let model = IngpModel::new(ModelConfig::tiny(), 42);
    let mut trainer = Trainer::new(model, TrainConfig::tiny(), 7);
    let before = trainer.eval_psnr(&dataset);
    let report = trainer.train(&dataset, 80);
    let after = trainer.eval_psnr(&dataset);
    assert!(after > before + 2.0, "PSNR {before:.2} -> {after:.2}");
    // Loss trajectory must trend downward.
    let early: f64 = report.losses[..10].iter().sum();
    let late: f64 = report.losses[report.losses.len() - 10..].iter().sum();
    assert!(late < early);
}

#[test]
fn morton_hash_matches_original_quality() {
    // The Tab. IV claim behind "Ours": swapping the hash function costs
    // almost no quality (paper: −0.23 dB on average).
    let scene = zoo::scene(SceneKind::Chair);
    let dataset = DatasetConfig::tiny().generate(&scene);
    let run = |hash| {
        let mut cfg = ModelConfig::tiny();
        cfg.grid.hash = hash;
        let mut trainer = Trainer::new(IngpModel::new(cfg, 3), TrainConfig::tiny(), 5);
        trainer.train(&dataset, 80);
        trainer.eval_psnr(&dataset)
    };
    let original = run(HashFunction::Original);
    let ours = run(HashFunction::Morton);
    assert!(
        (original - ours).abs() < 2.5,
        "hash swap changed quality too much: {original:.2} vs {ours:.2} dB"
    );
}

#[test]
fn hash_grid_beats_positional_encoding_at_equal_iterations() {
    // The iNGP premise (and the Tab. IV gap): hash grids converge much
    // faster than PE-MLPs at a fixed iteration budget.
    let scene = zoo::scene(SceneKind::Lego);
    let dataset = DatasetConfig::tiny().generate(&scene);
    let iterations = 60;

    let mut ingp = Trainer::new(
        IngpModel::new(ModelConfig::tiny(), 3),
        TrainConfig::tiny(),
        5,
    );
    ingp.train(&dataset, iterations);
    let ingp_psnr = ingp.eval_psnr(&dataset);

    let mut nerf = Trainer::new(NerfLite::new(4, 16, 3), TrainConfig::tiny(), 5);
    nerf.train(&dataset, iterations);
    let nerf_psnr = nerf.eval_psnr(&dataset);

    assert!(
        ingp_psnr > nerf_psnr - 1.0,
        "iNGP ({ingp_psnr:.2} dB) should not trail NeRF ({nerf_psnr:.2} dB)"
    );
}

#[test]
fn rendered_views_are_physically_sane() {
    let scene = zoo::scene(SceneKind::Ship);
    let dataset = DatasetConfig::tiny().generate(&scene);
    let model = IngpModel::new(ModelConfig::tiny(), 2);
    let mut trainer = Trainer::new(model, TrainConfig::tiny(), 3);
    trainer.train(&dataset, 40);
    for view in &dataset.test_views {
        let img = trainer.render_view(&view.camera, &dataset.bounds);
        for p in img.pixels() {
            assert!(p.is_finite());
            assert!(p.x >= 0.0 && p.x <= 1.0 + 1e-4);
            assert!(p.y >= 0.0 && p.y <= 1.0 + 1e-4);
            assert!(p.z >= 0.0 && p.z <= 1.0 + 1e-4);
        }
    }
}

#[test]
fn training_is_deterministic_given_seeds() {
    let scene = zoo::scene(SceneKind::Mic);
    let dataset = DatasetConfig::tiny().generate(&scene);
    let run = || {
        let model = IngpModel::new(ModelConfig::tiny(), 77);
        let mut trainer = Trainer::new(model, TrainConfig::tiny(), 13);
        trainer.train(&dataset, 10).losses
    };
    assert_eq!(run(), run(), "same seeds must give identical loss curves");
}
