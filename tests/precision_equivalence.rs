//! The mixed-precision refactor's equivalence anchor.
//!
//! The `ParamStore` refactor moved every trainable parameter group (hash
//! table, MLP weights) behind a precision-selectable store. Its contract:
//! the f32 backend is **bit-identical** to the pre-refactor code path.
//! The constants below were captured by running the pre-refactor seed
//! (commit `bf30d7a`) on the Tab. II small workload — per-iteration loss
//! bit patterns, a grid-gradient checksum, and the online co-simulation's
//! DRAM statistics, for both trainer engines. Any drift in the f32 path
//! fails this suite.

use instant_nerf::accel::{CosimSink, PipelineModel};
use instant_nerf::encoding::HashFunction;
use instant_nerf::prelude::*;
use instant_nerf::trainer::{Engine, Precision};

struct GoldenRun {
    engine: Engine,
    /// Exact bit patterns of the three per-iteration losses.
    loss_bits: [u64; 3],
    /// Exact bit pattern of the summed (f64) grid gradients after the
    /// last iteration.
    grad_sum_bits: u64,
}

/// Pre-refactor capture: Lego tiny dataset, `ModelConfig::small(Morton)`,
/// `TrainConfig::small()`, model seed `9 ^ 0xA1`, trainer seed 9,
/// 3 iterations, online co-simulation via `CosimSink`.
const GOLDEN: [GoldenRun; 2] = [
    GoldenRun {
        engine: Engine::Scalar,
        loss_bits: [0x3fd200f58c44cb24, 0x3fcdcecdc07e785a, 0x3fcb1532456269a7],
        grad_sum_bits: 0xbfa56af498e0eeac,
    },
    GoldenRun {
        engine: Engine::Batched,
        loss_bits: [0x3fd200f58c44cb24, 0x3fcdcecdbf38187a, 0x3fcb153246477df8],
        grad_sum_bits: 0xbfa56af4aa7a250b,
    },
];

/// DRAM-side golden numbers (identical for both engines: the gathered
/// point stream depends only on the trainer rng).
const GOLDEN_POINTS_QUERIED: u64 = 24000;
const GOLDEN_DRAM_REQUESTS: u64 = 122162;
const GOLDEN_HT_ROW_HITS: u64 = 19316;
const GOLDEN_HT_ROW_MISSES: u64 = 138;
const GOLDEN_HT_BANK_CONFLICTS: u64 = 41198;
const GOLDEN_PIPELINED_BITS: u64 = 0x3f3cfe22b02e3095;
const GOLDEN_ENERGY_BITS: u64 = 0x419f0177fa97b0c8;

fn run_f32(engine: Engine) -> (Vec<f64>, f64, u64, instant_nerf::accel::CosimStats) {
    let scene = zoo::scene(SceneKind::Lego);
    let dataset = DatasetConfig::tiny().generate(&scene);
    let model_cfg = ModelConfig::small(HashFunction::Morton);
    let config = TrainConfig::small()
        .with_engine(engine)
        .with_precision(Precision::F32);
    let batch_points = config.points_per_iteration() as u64;
    let mut cosim = CosimSink::new(PipelineModel::paper(model_cfg), batch_points);
    let mut trainer = Trainer::new(
        IngpModel::for_config(model_cfg, &config, 9 ^ 0xA1),
        config,
        9,
    );
    let report = trainer.train_with_sink(&dataset, 3, &mut cosim);
    let grad_sum: f64 = trainer
        .model()
        .grid()
        .gradients()
        .iter()
        .map(|&g| g as f64)
        .sum();
    let points = trainer.points_queried();
    (report.losses, grad_sum, points, cosim.stats().clone())
}

#[test]
fn f32_store_reproduces_pre_refactor_losses_and_grads_bitwise() {
    for golden in &GOLDEN {
        let (losses, grad_sum, points, _) = run_f32(golden.engine);
        assert_eq!(losses.len(), 3);
        for (i, (&loss, &bits)) in losses.iter().zip(&golden.loss_bits).enumerate() {
            assert_eq!(
                loss.to_bits(),
                bits,
                "{:?} engine, iteration {i}: loss {loss} drifted from the \
                 pre-refactor capture",
                golden.engine
            );
        }
        assert_eq!(
            grad_sum.to_bits(),
            golden.grad_sum_bits,
            "{:?} engine: grid gradient checksum drifted",
            golden.engine
        );
        assert_eq!(points, GOLDEN_POINTS_QUERIED);
    }
}

#[test]
fn f32_store_reproduces_pre_refactor_dram_stats_bitwise() {
    for golden in &GOLDEN {
        let (_, _, _, stats) = run_f32(golden.engine);
        assert_eq!(stats.iterations, 3);
        assert_eq!(
            stats.dram_requests, GOLDEN_DRAM_REQUESTS,
            "{:?}",
            golden.engine
        );
        assert_eq!(stats.ht_row_hits, GOLDEN_HT_ROW_HITS);
        assert_eq!(stats.ht_row_misses, GOLDEN_HT_ROW_MISSES);
        assert_eq!(stats.ht_bank_conflicts, GOLDEN_HT_BANK_CONFLICTS);
        assert_eq!(
            stats.pipelined_seconds.to_bits(),
            GOLDEN_PIPELINED_BITS,
            "{:?} engine: simulated iteration time drifted",
            golden.engine
        );
        assert_eq!(
            stats.dram_energy_pj.to_bits(),
            GOLDEN_ENERGY_BITS,
            "{:?} engine: simulated DRAM energy drifted",
            golden.engine
        );
    }
}

#[test]
fn fp16_model_halves_storage_against_the_f32_twin() {
    let model_cfg = ModelConfig::small(HashFunction::Morton);
    let full = IngpModel::new(model_cfg, 5);
    let half = IngpModel::with_precision(model_cfg, 5, Precision::Fp16);
    assert_eq!(full.precision(), Precision::F32);
    assert_eq!(half.precision(), Precision::Fp16);
    assert_eq!(full.parameter_count(), half.parameter_count());
    assert_eq!(2 * half.grid().storage_bytes(), full.grid().storage_bytes());
    assert_eq!(
        2 * half.parameter_storage_bytes(),
        full.parameter_storage_bytes()
    );
    assert_eq!(half.grid().entry_bytes(), 4);
    assert_eq!(full.grid().entry_bytes(), 8);
}

#[test]
fn fp16_training_trajectory_tracks_f32_loss() {
    // Both precisions sample identical points (the rng never sees the
    // model), so the loss trajectories must stay close while the fp16
    // working copies round every commit.
    let scene = zoo::scene(SceneKind::Lego);
    let dataset = DatasetConfig::tiny().generate(&scene);
    let model_cfg = ModelConfig::small(HashFunction::Morton);
    let mut losses = Vec::new();
    for precision in [Precision::F32, Precision::Fp16] {
        let config = TrainConfig::small().with_precision(precision);
        let mut trainer = Trainer::new(
            IngpModel::for_config(model_cfg, &config, 9 ^ 0xA1),
            config,
            9,
        );
        losses.push(trainer.train(&dataset, 5).losses);
    }
    for (i, (a, b)) in losses[0].iter().zip(&losses[1]).enumerate() {
        assert!(
            (a - b).abs() < 0.05 * a.abs().max(1e-3),
            "iteration {i}: f32 loss {a} vs fp16 loss {b} diverged"
        );
    }
    // fp16 must actually quantize: trajectories are close, not identical.
    assert_ne!(losses[0], losses[1]);
}
